"""Figure 1 / Theorem 2.1 family tests (Lemma 2.1 machine-checked)."""

import math
import random

import pytest

from repro.cc.functions import (
    disjointness,
    random_disjoint_pair,
    random_input_pairs,
    random_intersecting_pair,
)
from repro.core.family import theorem_1_1_bound, validate_family, verify_iff
from repro.core.mds import MdsFamily, bin_set, cobin_set, fvert, row, tvert, uvert
from repro.solvers import (
    has_dominating_set_of_size,
    is_dominating_set,
    min_dominating_set,
)


@pytest.fixture(scope="module")
def fam():
    return MdsFamily(4)


class TestConstruction:
    def test_k_must_be_power_of_two(self):
        for bad in (0, 1, 3, 6, 12):
            with pytest.raises(ValueError):
                MdsFamily(bad)

    def test_vertex_count(self, fam):
        # 4k row vertices + 12 log k bit-gadget vertices
        g = fam.fixed_graph()
        assert g.n == 4 * 4 + 12 * 2

    def test_six_cycles(self, fam):
        g = fam.fixed_graph()
        for ell in ("1", "2"):
            for h in range(fam.log_k):
                cyc = [fvert("A" + ell, h), tvert("A" + ell, h),
                       uvert("A" + ell, h), fvert("B" + ell, h),
                       tvert("B" + ell, h), uvert("B" + ell, h)]
                for i in range(6):
                    assert g.has_edge(cyc[i], cyc[(i + 1) % 6])

    def test_bin_coding_edges(self, fam):
        g = fam.fixed_graph()
        # row 3 = binary 11: connected to t^0, t^1 of its own set
        assert g.has_edge(row("A1", 3), tvert("A1", 0))
        assert g.has_edge(row("A1", 3), tvert("A1", 1))
        assert not g.has_edge(row("A1", 3), fvert("A1", 0))

    def test_bin_cobin_partition(self):
        for i in range(4):
            b = set(bin_set("A1", i, 2))
            c = set(cobin_set("A1", i, 2))
            assert not b & c
            assert len(b | c) == 4

    def test_input_edges_follow_x(self, fam, rng):
        x, y = random_input_pairs(16, 2, rng)[0]
        g = fam.build(x, y)
        k = fam.k
        for i in range(k):
            for j in range(k):
                assert g.has_edge(row("A1", i), row("A2", j)) == \
                    bool(x[i * k + j])
                assert g.has_edge(row("B1", i), row("B2", j)) == \
                    bool(y[i * k + j])

    def test_input_length_checked(self, fam):
        with pytest.raises(ValueError):
            fam.build((0,) * 5, (0,) * 16)

    def test_cut_is_logarithmic(self, fam):
        assert len(fam.cut_edges()) == 4 * fam.log_k

    def test_definition_1_1(self, fam):
        validate_family(fam)


class TestLemma21:
    def test_iff_random_sweep(self, fam, rng):
        pairs = random_input_pairs(16, 6, rng)
        report = verify_iff(fam, pairs, negate=True)
        assert report.true_instances and report.false_instances

    def test_intersecting_has_small_ds(self, fam, rng):
        x, y = random_intersecting_pair(16, rng)
        assert has_dominating_set_of_size(fam.build(x, y), fam.target_size)

    def test_disjoint_optimum_is_larger(self, fam, rng):
        x, y = random_disjoint_pair(16, rng)
        g = fam.build(x, y)
        assert len(min_dominating_set(g)) > fam.target_size

    def test_witness_structure(self, fam, rng):
        x, y = random_intersecting_pair(16, rng)
        witness = fam.witness_dominating_set(x, y)
        assert len(witness) == fam.target_size
        assert is_dominating_set(fam.build(x, y), witness)

    def test_witness_requires_intersection(self, fam, rng):
        x, y = random_disjoint_pair(16, rng)
        with pytest.raises(StopIteration):
            fam.witness_dominating_set(x, y)

    def test_all_ones_inputs(self, fam):
        ones = tuple([1] * 16)
        assert fam.predicate(fam.build(ones, ones))

    def test_all_zero_inputs(self, fam):
        zeros = tuple([0] * 16)
        assert not fam.predicate(fam.build(zeros, zeros))


class TestTheorem21Shape:
    def test_bound_grows_nearly_quadratically(self):
        """K/( |Ecut| log n ) with K = Θ(n²), |Ecut| = Θ(log n): the
        implied bound over n² should be Θ(1/log²n) — i.e. the ratio of
        bounds at consecutive k should approach 4 (quadratic)."""
        b4 = theorem_1_1_bound(MdsFamily(4))
        b8 = theorem_1_1_bound(MdsFamily(8))
        b16 = theorem_1_1_bound(MdsFamily(16))
        assert b8 / b4 > 1.8
        assert b16 / b8 > 2.0

    def test_n_is_theta_k(self):
        for k in (4, 8, 16):
            fam = MdsFamily(k)
            assert 4 * k <= fam.n_vertices() <= 4 * k + 12 * math.log2(k)
