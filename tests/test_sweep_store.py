"""Sweep fabric: content-addressed result store, work-stealing shards,
crash resume, and the sweep-layer bugfix regressions."""

import json
import multiprocessing
import os
import pickle
import signal
import subprocess
import sys
import time

import pytest

from repro.core.family import SweepReport, sweep, verify_iff
from repro.core.maxcut import MaxCutFamily
from repro.core.mds import MdsFamily
from repro.experiments.sweep import SHARDS_PER_WORKER, parallel_decisions
from repro.experiments.sweep_store import (
    FamilyKey,
    SweepStore,
    default_sweep_store_dir,
    family_key,
)

SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                   "src")


def _grid(k_bits):
    return [(tuple(int(b) for b in format(i, f"0{k_bits}b")),
             tuple(int(b) for b in format(j, f"0{k_bits}b")))
            for i in range(1 << k_bits) for j in range(1 << k_bits)]


def _pairs(fam, n, seed=0xBEEF):
    import random

    from repro.cc.functions import random_input_pairs
    return random_input_pairs(fam.k_bits, n, random.Random(seed))


def _entries(store, fkey):
    fdir = store.family_dir(fkey)
    if not os.path.isdir(fdir):
        return []
    return sorted(f for f in os.listdir(fdir)
                  if f.endswith(".json") and f != "meta.json")


# ----------------------------------------------------------------------
# store basics: keys, round-trip, meta
# ----------------------------------------------------------------------
class TestStoreBasics:
    def test_roundtrip_single_pair(self, tmp_path):
        store = SweepStore(str(tmp_path))
        fkey = family_key(MdsFamily(2))
        x, y = (0, 1, 0, 1), (1, 1, 0, 0)
        assert store.lookup(fkey, x, y) is None
        store.store(fkey, x, y, False)
        assert store.lookup(fkey, x, y) is False
        store.store(fkey, x, y, True)  # last write wins
        assert store.lookup(fkey, x, y) is True
        assert store.load_pairs(fkey) == {(x, y): True}

    def test_key_distinguishes_families_not_instances(self):
        assert family_key(MdsFamily(2)) == family_key(MdsFamily(2))
        assert family_key(MdsFamily(2)) != family_key(MaxCutFamily(2))
        assert family_key(MdsFamily(2)) != family_key(MdsFamily(4))

    def test_meta_records_readable_identity(self, tmp_path):
        store = SweepStore(str(tmp_path))
        fam = MdsFamily(2)
        fkey = family_key(fam)
        store.store(fkey, (0,) * 4, (1,) * 4, True)
        with open(os.path.join(store.family_dir(fkey), "meta.json")) as fh:
            meta = json.load(fh)
        assert meta["family"] == "MdsFamily"
        assert meta["k_bits"] == 4
        assert meta["skeleton_hash"].startswith("skel:")

    def test_default_dir_under_cache_root(self, monkeypatch):
        monkeypatch.setenv("XDG_CACHE_HOME", "/tmp/xdg-test")
        assert default_sweep_store_dir() == "/tmp/xdg-test/repro/sweeps"

    def test_clear_removes_entries_and_tmps(self, tmp_path):
        store = SweepStore(str(tmp_path))
        fkey = family_key(MdsFamily(2))
        store.store(fkey, (0,) * 4, (1,) * 4, True)
        fdir = store.family_dir(fkey)
        with open(os.path.join(fdir, "tmpdead.tmp"), "w") as fh:
            fh.write("{")
        store.clear()
        assert not os.path.exists(fdir)

    def test_startup_sweeps_stale_tmp_only(self, tmp_path):
        store = SweepStore(str(tmp_path))
        fkey = family_key(MdsFamily(2))
        store.store(fkey, (0,) * 4, (1,) * 4, True)
        fdir = store.family_dir(fkey)
        stale = os.path.join(fdir, "tmpstale.tmp")
        fresh = os.path.join(fdir, "tmpfresh.tmp")
        for path in (stale, fresh):
            with open(path, "w") as fh:
                fh.write("{")
        old = os.stat(stale).st_mtime - 7200.0
        os.utime(stale, (old, old))
        SweepStore(str(tmp_path))  # startup sweep
        assert not os.path.exists(stale)
        assert os.path.exists(fresh)
        assert _entries(store, fkey)  # real entries untouched


# ----------------------------------------------------------------------
# sweep() integration: restore, persist, report counters
# ----------------------------------------------------------------------
class TestSweepWithStore:
    def test_repeat_sweep_is_pure_restore(self, tmp_path):
        store = SweepStore(str(tmp_path))
        fam = MdsFamily(2)
        pairs = _grid(fam.k_bits)
        first = sweep(fam, pairs, store=store)
        assert first.solved == 256 and first.store_hits == 0
        fresh = MdsFamily(2)  # no memo, decisions must come from disk
        second = sweep(fresh, pairs, store=store)
        assert second.decisions == first.decisions
        assert second.store_hits == 256 and second.solved == 0
        assert second.unique_pairs == 256

    def test_solved_distinguishes_fresh_from_restored(self, tmp_path):
        # regression: solved was hardwired to the unique-pair count even
        # when every decision was restored from the store
        store = SweepStore(str(tmp_path))
        fam = MdsFamily(2)
        pairs = _pairs(fam, 6)
        sweep(fam, pairs[:3], store=store)
        report = sweep(MdsFamily(2), pairs, store=store)
        assert report.store_hits == 3
        assert report.solved == len(report.decisions) - 3 == 3
        assert report.unique_pairs == 6
        assert "store hits" in str(report)
        # no store, no store_hits: the legacy report shape is unchanged
        plain = sweep(MdsFamily(2), pairs)
        assert plain.store_hits == 0 and plain.solved == plain.unique_pairs
        assert "store hits" not in str(plain)

    def test_corrupt_entry_degrades_to_recompute(self, tmp_path):
        store = SweepStore(str(tmp_path))
        fam = MdsFamily(2)
        pairs = _pairs(fam, 5)
        first = sweep(fam, pairs, store=store)
        fkey = family_key(fam)
        fdir = store.family_dir(fkey)
        names = _entries(store, fkey)
        # truncated mid-write, wrong shape, not JSON at all
        for name, junk in zip(names, ('{"x": "01', '{"x": 3, "y": []}',
                                      "not json")):
            with open(os.path.join(fdir, name), "w") as fh:
                fh.write(junk)
        report = sweep(MdsFamily(2), pairs, store=store)
        assert report.decisions == first.decisions
        assert report.solved == 3 and report.store_hits == len(names) - 3
        # the corrupt files were dropped and rewritten
        assert len(_entries(store, fkey)) == len(names)
        assert sweep(MdsFamily(2), pairs, store=store).store_hits == \
            report.unique_pairs

    def test_unwritable_store_degrades_to_memory_only(self, tmp_path):
        target = tmp_path / "blocked"
        target.write_text("a file where the store dir should be")
        store = SweepStore(str(target))
        fam = MdsFamily(2)
        pairs = _pairs(fam, 3)
        report = sweep(fam, pairs, store=store)
        assert report.solved == len({(tuple(x), tuple(y))
                                     for x, y in pairs})
        assert report.decisions == sweep(MdsFamily(2), pairs).decisions

    def test_parallel_sweep_persists_through_workers(self, tmp_path):
        store = SweepStore(str(tmp_path))
        fam = MdsFamily(2)
        pairs = _grid(fam.k_bits)[:64]
        report = sweep(fam, pairs, jobs=2, store=store)
        assert report.solved == 64
        assert len(_entries(store, family_key(fam))) == 64
        resumed = sweep(MdsFamily(2), pairs, store=store)
        assert resumed.store_hits == 64
        assert resumed.decisions == report.decisions

    def test_verify_iff_accepts_store(self, tmp_path):
        store = SweepStore(str(tmp_path))
        fam = MdsFamily(2)
        pairs = _pairs(fam, 4)
        report = verify_iff(fam, pairs, negate=True, store=store)
        assert report.checked == 4
        assert _entries(store, family_key(fam))

    def test_configured_default_store(self, tmp_path):
        from repro.core.family import configure_sweep
        configure_sweep(store_dir=str(tmp_path))
        try:
            fam = MdsFamily(2)
            pairs = _pairs(fam, 3)
            sweep(fam, pairs)
            assert _entries(SweepStore(str(tmp_path)), family_key(fam))
        finally:
            configure_sweep(store_dir=None)
        report = sweep(MdsFamily(2), pairs)  # store off again
        assert report.store_hits == 0


# ----------------------------------------------------------------------
# the shard scheduler and its regressions
# ----------------------------------------------------------------------
PARENT_PID = os.getpid()


class CrashInWorkers(MdsFamily):
    """Predicate hard-kills any process that is not the test parent."""

    def predicate(self, graph):
        if os.getpid() != PARENT_PID:
            os._exit(17)
        return super().predicate(graph)


class HangInWorkers(MdsFamily):
    """Predicate wedges any process that is not the test parent."""

    def predicate(self, graph):
        if os.getpid() != PARENT_PID:
            time.sleep(600)
        return super().predicate(graph)


class TestShardScheduler:
    def test_empty_pairs_returns_empty(self):
        # regression: len(pairs)==0 divided by zero before the pool
        assert parallel_decisions(MdsFamily(2), [], 4) == []

    def test_nonpositive_jobs_clamped(self):
        # regression: jobs<=0 divided by zero in the chunk computation
        fam = MdsFamily(2)
        pairs = [(tuple(p[0]), tuple(p[1])) for p in _pairs(fam, 3)]
        want = [fam.predicate(fam.build(x, y)) for x, y in pairs]
        for jobs in (0, -3):
            assert parallel_decisions(MdsFamily(2), pairs, jobs) == want

    def test_shards_are_smaller_than_static_chunks(self):
        fam = MdsFamily(2)
        pairs = _grid(fam.k_bits)
        jobs = 4
        static_chunk = (len(pairs) + jobs - 1) // jobs
        shard = max(1, -(-len(pairs) // (jobs * SHARDS_PER_WORKER)))
        assert shard * SHARDS_PER_WORKER <= static_chunk + SHARDS_PER_WORKER

    def test_matches_serial_decisions(self):
        fam = MdsFamily(2)
        pairs = [(tuple(p[0]), tuple(p[1])) for p in _pairs(fam, 9)]
        want = [fam.predicate(fam.build(x, y)) for x, y in pairs]
        assert parallel_decisions(MdsFamily(2), pairs, 3) == want

    def test_worker_death_healed_by_parent(self):
        fam = CrashInWorkers(2)
        pairs = [(tuple(p[0]), tuple(p[1])) for p in _pairs(fam, 5)]
        want = [MdsFamily(2).predicate(MdsFamily(2).build(x, y))
                for x, y in pairs]
        got = parallel_decisions(fam, pairs, 2, retries=0)
        assert got == want

    def test_timeout_healed_by_parent(self):
        fam = HangInWorkers(2)
        pairs = [(tuple(p[0]), tuple(p[1])) for p in _pairs(fam, 4)]
        want = [MdsFamily(2).predicate(MdsFamily(2).build(x, y))
                for x, y in pairs]
        start = time.monotonic()
        got = parallel_decisions(fam, pairs, 2, timeout=0.5)
        assert got == want
        assert time.monotonic() - start < 120  # wedged workers torn down

    def test_unpicklable_family_still_returns_none(self):
        class Local(MdsFamily):
            pass

        assert parallel_decisions(Local(2), _pairs(Local(2), 3), 2) is None


# ----------------------------------------------------------------------
# fan-out payload size is sweep-history independent
# ----------------------------------------------------------------------
class TestPickleStripsSweepState:
    def test_blob_size_history_independent(self):
        # regression: sweep() shipped the accumulated _sweep_memo and the
        # warmed skeleton inside every worker payload
        fam = MdsFamily(2)
        before = len(pickle.dumps(fam))
        sweep(fam, _grid(fam.k_bits))
        fam.skeleton()
        assert len(fam._sweep_memo) == 256
        assert len(pickle.dumps(fam)) == before

    def test_unpickled_family_rebuilds_cleanly(self):
        fam = MdsFamily(2)
        pairs = _pairs(fam, 3)
        want = sweep(fam, pairs).decisions
        clone = pickle.loads(pickle.dumps(fam))
        assert not hasattr(clone, "_sweep_memo")
        assert not hasattr(clone, "_skeleton_store")
        assert sweep(clone, pairs).decisions == want


# ----------------------------------------------------------------------
# concurrency: parallel writers on the same key
# ----------------------------------------------------------------------
def _hammer_store(root, fkey_tuple, decision, reps):
    store = SweepStore(root, sweep_stale=False)
    fkey = FamilyKey(*fkey_tuple)
    for __ in range(reps):
        store.store(fkey, (0, 1, 0, 1), (1, 0, 1, 0), decision)


class TestConcurrentWriters:
    def test_same_key_atomic_last_write_wins(self, tmp_path):
        fkey = family_key(MdsFamily(2))
        ctx = multiprocessing.get_context("fork")
        writers = [
            ctx.Process(target=_hammer_store,
                        args=(str(tmp_path), fkey.as_tuple(), bool(i), 50))
            for i in range(2)
        ]
        for proc in writers:
            proc.start()
        for proc in writers:
            proc.join(timeout=60)
            assert proc.exitcode == 0
        store = SweepStore(str(tmp_path))
        # never torn: the entry decodes and carries one writer's value
        value = store.lookup(fkey, (0, 1, 0, 1), (1, 0, 1, 0))
        assert value in (True, False)
        assert len(_entries(store, fkey)) == 1


# ----------------------------------------------------------------------
# kill-resume: a campaign killed mid-grid resumes with zero recompute
# ----------------------------------------------------------------------
KILL_RESUME_SCRIPT = """
import sys, time
sys.path.insert(0, {src!r})
from repro.core.mds import MdsFamily

_orig = MdsFamily.predicate
def slow(self, graph):
    time.sleep(0.02)  # stretch the grid so the parent can kill mid-way
    return _orig(self, graph)
MdsFamily.predicate = slow

from repro.core.family import sweep
from repro.experiments.sweep_store import SweepStore

fam = MdsFamily(2)
kb = fam.k_bits
pairs = [(tuple(int(b) for b in format(i, "0%db" % kb)),
          tuple(int(b) for b in format(j, "0%db" % kb)))
         for i in range(1 << kb) for j in range(1 << kb)]
sweep(fam, pairs, store=SweepStore({store!r}))
"""


class TestKillResume:
    def test_killed_grid_sweep_resumes_without_recompute(self, tmp_path,
                                                         monkeypatch):
        store_dir = str(tmp_path / "store")
        proc = subprocess.Popen(
            [sys.executable, "-c",
             KILL_RESUME_SCRIPT.format(src=SRC, store=store_dir)])
        fkey = family_key(MdsFamily(2))
        probe = SweepStore(store_dir, sweep_stale=False)
        deadline = time.monotonic() + 60
        try:
            while time.monotonic() < deadline:
                if len(_entries(probe, fkey)) >= 8:
                    break
                if proc.poll() is not None:
                    pytest.fail("sweep subprocess finished before the kill")
                time.sleep(0.01)
            else:
                pytest.fail("store never accumulated 8 entries")
        finally:
            if proc.poll() is None:
                proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)

        stored = SweepStore(store_dir).load_pairs(fkey)
        assert 0 < len(stored) < 256  # genuinely mid-grid
        # atomic writes: every surviving entry decodes (no torn files)

        calls = []
        orig = MdsFamily.predicate
        monkeypatch.setattr(
            MdsFamily, "predicate",
            lambda self, graph: (calls.append(1), orig(self, graph))[1])
        # batch=False: the call counter above only sees per-pair
        # predicate() solves, which the batched kernel bypasses
        report = sweep(MdsFamily(2), _grid(4), store=SweepStore(store_dir),
                       batch=False)
        assert report.store_hits == len(stored)
        assert report.solved == 256 - len(stored)
        assert len(calls) == 256 - len(stored)  # zero stored-key recompute
        assert report.unique_pairs == 256

        # converged: a third pass is pure restore
        final = sweep(MdsFamily(2), _grid(4), store=SweepStore(store_dir))
        assert final.store_hits == 256 and final.solved == 0
        assert final.decisions == report.decisions


# ----------------------------------------------------------------------
# the standing check and the CLI grid mode
# ----------------------------------------------------------------------
class TestCheckAndCli:
    def test_store_equivalence_check_green(self):
        from repro.check.sweep_check import check_sweep_store
        assert check_sweep_store(0, 0) is None
        assert check_sweep_store(0, 1) is None

    def test_store_equivalence_registered(self):
        from repro.check import CHECKS
        assert any(c.name == "sweep:store-equivalence" for c in CHECKS)

    def test_cli_grid_first_and_resumed(self, tmp_path, capsys):
        from repro.cli import main
        store = str(tmp_path / "grid-store")
        main(["verify", "mds", "-k", "2", "--grid", "--store-dir", store])
        out = capsys.readouterr().out
        assert "coverage before: 0/256 stored, 256 remaining" in out
        assert "256 freshly solved" in out
        assert "iff-lemma over the full grid" in out
        main(["verify", "mds", "-k", "2", "--grid", "--store-dir", store,
              "--expect-store-hits", "90"])
        out = capsys.readouterr().out
        assert "coverage before: 256/256 stored, 0 remaining" in out
        assert "store hits: 256/256 (100.0%)" in out

    def test_cli_grid_gate_fails_on_cold_store(self, tmp_path, capsys):
        from repro.cli import main
        with pytest.raises(SystemExit) as exc:
            main(["verify", "mds", "-k", "2", "--grid",
                  "--store-dir", str(tmp_path / "cold"),
                  "--expect-store-hits", "90"])
        assert "below the required" in str(exc.value)

    def test_cli_grid_rejects_single_pair_flags(self, tmp_path):
        from repro.cli import main
        with pytest.raises(SystemExit):
            main(["verify", "mds", "-k", "2", "--grid",
                  "--store-dir", str(tmp_path), "--x", "0000",
                  "--y", "0000"])
