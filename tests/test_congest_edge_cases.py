"""Edge cases of the collect-and-solve pipeline and the simulators."""

import pytest

from repro.congest.algorithms.collect import run_collect_and_solve, run_universal_exact
from repro.congest.algorithms import run_maxcut_sampling
from repro.congest.model import CongestSimulator, NodeAlgorithm
from repro.graphs import Graph, complete_graph, cycle_graph, path_graph
from repro.solvers import cut_weight


class TestCollectEdgeCases:
    def _count_solver(self, n, edge_records, vertex_records):
        return len(edge_records), {u: u for u in range(n)}

    def test_two_vertices(self):
        g = path_graph(2)
        outputs, sim = run_collect_and_solve(g, self._count_solver)
        assert all(o["global"] == 1 for o in outputs.values())

    def test_star(self):
        g = Graph()
        for leaf in range(5):
            g.add_edge("c", leaf)
        outputs, sim = run_collect_and_solve(g, self._count_solver)
        assert all(o["global"] == 5 for o in outputs.values())

    def test_every_vertex_gets_its_own_value(self):
        g = cycle_graph(7)
        outputs, sim = run_collect_and_solve(g, self._count_solver)
        for label, o in outputs.items():
            assert o["value"] == sim.uid_of[label]

    def test_edge_filter_drops_everything(self):
        g = cycle_graph(5)
        outputs, sim = run_collect_and_solve(
            g, self._count_solver, edge_filter=lambda u, v, rng: False)
        assert all(o["global"] == 0 for o in outputs.values())

    def test_vertex_weights_uploaded(self):
        g = path_graph(3)
        for i, v in enumerate(g.vertices()):
            g.set_vertex_weight(v, i + 10)

        def solver(n, edge_records, vertex_records):
            return sorted(w for __, w in vertex_records), {}

        outputs, __ = run_collect_and_solve(g, solver,
                                            include_vertex_weights=True)
        assert next(iter(outputs.values()))["global"] == [10, 11, 12]

    def test_weighted_edges_uploaded(self):
        g = path_graph(3)
        g.set_edge_weight(0, 1, 7)
        g.set_edge_weight(1, 2, 9)

        def solver(n, edge_records, vertex_records):
            return sorted(w for __, ___, w in edge_records), {}

        outputs, __ = run_collect_and_solve(g, solver)
        assert next(iter(outputs.values()))["global"] == [7, 9]

    def test_deterministic_given_seed(self):
        g = complete_graph(6)
        r1 = run_maxcut_sampling(g, p=0.5, seed=3)
        r2 = run_maxcut_sampling(g, p=0.5, seed=3)
        assert r1.sides == r2.sides
        assert r1.sampled_edges == r2.sampled_edges

    def test_local_search_fallback_for_big_samples(self):
        """With exact_limit = 0 the leader must fall back to local
        search and still return a valid cut."""
        g = complete_graph(8)
        res = run_maxcut_sampling(g, p=1.0, seed=2, exact_limit=0)
        side = [v for v, s in res.sides.items() if s]
        assert cut_weight(g, side) >= g.m / 2


class TestSimulatorAccounting:
    def test_total_bits_accumulate(self):
        class Ping(NodeAlgorithm):
            def on_start(self, ctx):
                return {w: 1 for w in ctx.neighbors}

            def on_round(self, ctx, messages):
                ctx.halt(len(messages))
                return {}

        g = cycle_graph(5)
        sim = CongestSimulator(g)
        outputs = sim.run(Ping)
        assert sim.total_messages == 10  # 2 per vertex in round 0
        assert sim.total_bits == 20      # each int 1 costs 2 bits
        assert all(v == 2 for v in outputs.values())

    def test_observer_sees_all_messages(self):
        seen = []

        class Ping(NodeAlgorithm):
            def on_start(self, ctx):
                return {w: 1 for w in ctx.neighbors}

            def on_round(self, ctx, messages):
                ctx.halt()
                return {}

        g = path_graph(3)
        sim = CongestSimulator(g)
        sim.observer = lambda s, r, b: seen.append((s, r, b))
        sim.run(Ping)
        assert len(seen) == sim.total_messages


class TestBandwidthCounterSemantics:
    """Documented in CongestSimulator._check: on BandwidthExceeded the
    counters include every message checked so far — the offender
    included — and exclude the rest of the rejected batch."""

    def test_counters_include_offender(self):
        from repro.congest.model import BandwidthExceeded, message_bits

        big = 2 ** 40  # 42 bits
        small = 1      # 2 bits

        class Talker(NodeAlgorithm):
            def on_start(self, ctx):
                if ctx.uid == 0:
                    # dict order is delivery-check order: small first
                    return {1: small, 2: big}
                return {}

            def on_round(self, ctx, messages):
                ctx.halt()
                return {}

        g = Graph()
        g.add_edge(0, 1)
        g.add_edge(0, 2)
        sim = CongestSimulator(g, bandwidth=8)
        with pytest.raises(BandwidthExceeded):
            sim.run(Talker)
        assert sim.total_messages == 2  # small + the offending big one
        assert sim.total_bits == message_bits(small) + message_bits(big)
        assert sim.max_message_bits == message_bits(big)

    def test_sending_to_non_neighbor_rejected(self):
        class Rogue(NodeAlgorithm):
            def on_start(self, ctx):
                far = (ctx.uid + 2) % ctx.n
                return {far: 1}

            def on_round(self, ctx, messages):
                ctx.halt()
                return {}

        with pytest.raises(ValueError, match="non-neighbor"):
            CongestSimulator(path_graph(4)).run(Rogue)


class TestTwoPartyBandwidth:
    """simulate_two_party must honour the caller's bandwidth choice."""

    def _factory(self):
        class Ping(NodeAlgorithm):
            def on_start(self, ctx):
                return {w: 2 ** 40 for w in ctx.neighbors}  # 42-bit payload

            def on_round(self, ctx, messages):
                ctx.halt(len(messages))
                return {}

        return Ping

    def test_local_model_allows_big_messages(self):
        import math

        from repro.cc.alice_bob import simulate_two_party

        g = path_graph(4)
        result = simulate_two_party(g, [0, 1], self._factory(),
                                    bandwidth=math.inf)
        assert result.bandwidth == math.inf
        assert result.cut_messages == 2  # one each way over the cut edge

    def test_custom_bandwidth_enforced(self):
        from repro.cc.alice_bob import simulate_two_party
        from repro.congest.model import BandwidthExceeded

        g = path_graph(4)
        with pytest.raises(BandwidthExceeded):
            simulate_two_party(g, [0, 1], self._factory(), bandwidth=8)

    def test_default_is_congest_bandwidth(self):
        from repro.cc.alice_bob import simulate_two_party
        from repro.congest.model import default_bandwidth

        class Quiet(NodeAlgorithm):
            def on_start(self, ctx):
                return {w: 1 for w in ctx.neighbors}

            def on_round(self, ctx, messages):
                ctx.halt()
                return {}

        g = path_graph(4)
        result = simulate_two_party(g, [0, 1], Quiet,
                                    bandwidth_factor=16)
        assert result.bandwidth == default_bandwidth(4, 16)

    def test_caller_tracer_receives_events_alongside_counter(self):
        from repro.cc.alice_bob import simulate_two_party
        from repro.obs import RecordingTracer

        class Quiet(NodeAlgorithm):
            def on_start(self, ctx):
                return {w: 1 for w in ctx.neighbors}

            def on_round(self, ctx, messages):
                ctx.halt()
                return {}

        tracer = RecordingTracer()
        result = simulate_two_party(path_graph(4), [0, 1], Quiet,
                                    tracer=tracer)
        kinds = {e.kind for e in tracer.events}
        assert "message" in kinds and "run_end" in kinds
        # the cut accounting cross-check ran (observer vs trace counter)
        assert result.cut_bits == sum(result.cut_bits_by_round.values())
