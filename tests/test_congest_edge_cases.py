"""Edge cases of the collect-and-solve pipeline and the simulators."""

import pytest

from repro.congest.algorithms.collect import run_collect_and_solve, run_universal_exact
from repro.congest.algorithms import run_maxcut_sampling
from repro.congest.model import CongestSimulator, NodeAlgorithm
from repro.graphs import Graph, complete_graph, cycle_graph, path_graph
from repro.solvers import cut_weight


class TestCollectEdgeCases:
    def _count_solver(self, n, edge_records, vertex_records):
        return len(edge_records), {u: u for u in range(n)}

    def test_two_vertices(self):
        g = path_graph(2)
        outputs, sim = run_collect_and_solve(g, self._count_solver)
        assert all(o["global"] == 1 for o in outputs.values())

    def test_star(self):
        g = Graph()
        for leaf in range(5):
            g.add_edge("c", leaf)
        outputs, sim = run_collect_and_solve(g, self._count_solver)
        assert all(o["global"] == 5 for o in outputs.values())

    def test_every_vertex_gets_its_own_value(self):
        g = cycle_graph(7)
        outputs, sim = run_collect_and_solve(g, self._count_solver)
        for label, o in outputs.items():
            assert o["value"] == sim.uid_of[label]

    def test_edge_filter_drops_everything(self):
        g = cycle_graph(5)
        outputs, sim = run_collect_and_solve(
            g, self._count_solver, edge_filter=lambda u, v, rng: False)
        assert all(o["global"] == 0 for o in outputs.values())

    def test_vertex_weights_uploaded(self):
        g = path_graph(3)
        for i, v in enumerate(g.vertices()):
            g.set_vertex_weight(v, i + 10)

        def solver(n, edge_records, vertex_records):
            return sorted(w for __, w in vertex_records), {}

        outputs, __ = run_collect_and_solve(g, solver,
                                            include_vertex_weights=True)
        assert next(iter(outputs.values()))["global"] == [10, 11, 12]

    def test_weighted_edges_uploaded(self):
        g = path_graph(3)
        g.set_edge_weight(0, 1, 7)
        g.set_edge_weight(1, 2, 9)

        def solver(n, edge_records, vertex_records):
            return sorted(w for __, ___, w in edge_records), {}

        outputs, __ = run_collect_and_solve(g, solver)
        assert next(iter(outputs.values()))["global"] == [7, 9]

    def test_deterministic_given_seed(self):
        g = complete_graph(6)
        r1 = run_maxcut_sampling(g, p=0.5, seed=3)
        r2 = run_maxcut_sampling(g, p=0.5, seed=3)
        assert r1.sides == r2.sides
        assert r1.sampled_edges == r2.sampled_edges

    def test_local_search_fallback_for_big_samples(self):
        """With exact_limit = 0 the leader must fall back to local
        search and still return a valid cut."""
        g = complete_graph(8)
        res = run_maxcut_sampling(g, p=1.0, seed=2, exact_limit=0)
        side = [v for v, s in res.sides.items() if s]
        assert cut_weight(g, side) >= g.m / 2


class TestSimulatorAccounting:
    def test_total_bits_accumulate(self):
        class Ping(NodeAlgorithm):
            def on_start(self, ctx):
                return {w: 1 for w in ctx.neighbors}

            def on_round(self, ctx, messages):
                ctx.halt(len(messages))
                return {}

        g = cycle_graph(5)
        sim = CongestSimulator(g)
        outputs = sim.run(Ping)
        assert sim.total_messages == 10  # 2 per vertex in round 0
        assert sim.total_bits == 20      # each int 1 costs 2 bits
        assert all(v == 2 for v in outputs.values())

    def test_observer_sees_all_messages(self):
        seen = []

        class Ping(NodeAlgorithm):
            def on_start(self, ctx):
                return {w: 1 for w in ctx.neighbors}

            def on_round(self, ctx, messages):
                ctx.halt()
                return {}

        g = path_graph(3)
        sim = CongestSimulator(g)
        sim.observer = lambda s, r, b: seen.append((s, r, b))
        sim.run(Ping)
        assert len(seen) == sim.total_messages
