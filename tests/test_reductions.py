"""Reduction tests: Lemmas 2.2/2.3, Claim 2.7, Theorem 2.6 families."""

import pytest

from repro.cc.functions import random_input_pairs, random_intersecting_pair
from repro.core.family import validate_family
from repro.core.hamiltonian import START, HamiltonianCycleFamily
from repro.core.reductions import (
    directed_to_undirected_hc,
    hc_to_hp,
    two_ecss_family,
    undirected_hc_family,
    undirected_hp_family,
)
from repro.graphs import DiGraph, complete_graph, cycle_graph, random_graph
from repro.solvers import (
    has_hamiltonian_cycle,
    has_hamiltonian_path,
    is_hamiltonian_cycle,
)


def random_digraph(n, p, rng):
    g = DiGraph()
    for v in range(n):
        g.add_vertex(v)
    for u in range(n):
        for v in range(n):
            if u != v and rng.random() < p:
                g.add_edge(u, v)
    return g


class TestLemma22:
    def test_triple_split_structure(self):
        dg = DiGraph()
        dg.add_edge(0, 1)
        und = directed_to_undirected_hc(dg)
        assert und.n == 6
        assert und.has_edge(("in", 0), ("mid", 0))
        assert und.has_edge(("mid", 0), ("out", 0))
        assert und.has_edge(("out", 0), ("in", 1))

    def test_directed_cycle_maps_to_cycle(self):
        dg = DiGraph()
        for i in range(4):
            dg.add_edge(i, (i + 1) % 4)
        assert has_hamiltonian_cycle(directed_to_undirected_hc(dg))

    def test_orientation_preserved(self):
        # a directed path is NOT a directed cycle; neither is its image
        dg = DiGraph()
        dg.add_edge(0, 1)
        dg.add_edge(1, 2)
        assert not has_hamiltonian_cycle(directed_to_undirected_hc(dg))

    def test_equivalence_random(self, rng):
        for __ in range(8):
            dg = random_digraph(6, 0.35, rng)
            assert has_hamiltonian_cycle(dg) == \
                has_hamiltonian_cycle(directed_to_undirected_hc(dg))


class TestLemma23:
    def test_pivot_split_structure(self):
        g = cycle_graph(4)
        hp = hc_to_hp(g, pivot=0)
        assert ("pivot", 1) in hp and ("pivot", 2) in hp
        assert hp.has_edge("hp_s", ("pivot", 1))
        assert hp.has_edge(("pivot", 2), "hp_t")

    def test_cycle_becomes_path(self):
        g = cycle_graph(5)
        assert has_hamiltonian_path(hc_to_hp(g))

    def test_equivalence_random(self, rng):
        for __ in range(8):
            g = random_graph(7, 0.45, rng)
            hp = hc_to_hp(g, pivot=g.vertices()[0])
            assert has_hamiltonian_cycle(g) == has_hamiltonian_path(hp)

    def test_default_pivot_is_min(self):
        g = cycle_graph(4)
        hp = hc_to_hp(g)
        assert 0 not in hp  # the min-id vertex was split


class TestReducedFamilies:
    """Theorem 2.6: the derived families satisfy Definition 1.1; the
    predicate equivalence is carried by the verified Lemma 2.2/2.3
    equivalences composed with the verified base family (Claims 2.1-2.6)."""

    def test_undirected_hc_family_structure(self):
        base = HamiltonianCycleFamily(2)
        fam = undirected_hc_family(base)
        validate_family(fam)
        assert fam.n_vertices() == 3 * base.n_vertices()

    def test_undirected_hp_family_structure(self):
        base = HamiltonianCycleFamily(2)
        fam = undirected_hp_family(base, pivot=START)
        validate_family(fam)
        # pivot split: 3n − 1 + 4 vertices
        assert fam.n_vertices() == 3 * base.n_vertices() + 3

    def test_two_ecss_family_structure(self):
        base = HamiltonianCycleFamily(2)
        fam = two_ecss_family(base)
        validate_family(fam)

    def test_positive_instance_composes(self, rng):
        """On an intersecting input the base witness lifts through the
        reduction: the transformed graph is Hamiltonian."""
        base = HamiltonianCycleFamily(2)
        fam = undirected_hc_family(base)
        x, y = random_intersecting_pair(4, rng)
        cycle = base.witness_cycle(x, y)
        # lift the directed cycle through the in/mid/out split by hand
        lifted = []
        for v in cycle:
            lifted += [("in", v), ("mid", v), ("out", v)]
        assert is_hamiltonian_cycle(fam.build(x, y), lifted)

    def test_cut_scaling(self):
        base = HamiltonianCycleFamily(2)
        fam = undirected_hc_family(base)
        # each original cut arc becomes one undirected cut edge
        assert len(fam.cut_edges()) == len(base.cut_edges())
