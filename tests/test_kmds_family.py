"""Sections 4.2-4.3 k-MDS family tests (Theorems 4.4-4.5)."""

import pytest

from repro.cc.functions import (
    disjointness,
    random_disjoint_pair,
    random_input_pairs,
    random_intersecting_pair,
)
from repro.core.family import validate_family, verify_iff
from repro.core.kmds import (
    A_SPECIAL,
    B_SPECIAL,
    R_SPECIAL,
    KMdsFamily,
    avert,
    bvert,
    scomp,
    svert,
)
from repro.covering.designs import build_covering_collection


@pytest.fixture(scope="module")
def collection():
    return build_covering_collection(universe_size=16, T=6, r=2, seed=0)


@pytest.fixture(scope="module")
def fam(collection):
    return KMdsFamily(collection, k=2)


class TestConstruction:
    def test_element_pairs(self, fam):
        g = fam.fixed_graph()
        for j in range(fam.ell):
            assert g.has_edge(avert(j), bvert(j))

    def test_set_membership_edges(self, fam, collection):
        g = fam.fixed_graph()
        for i in range(collection.T):
            for j in range(fam.ell):
                in_set = j in collection.sets[i]
                assert g.has_edge(svert(i), avert(j)) == in_set
                assert g.has_edge(scomp(i), bvert(j)) == (not in_set)

    def test_specials(self, fam, collection):
        g = fam.fixed_graph()
        assert g.vertex_weight(R_SPECIAL) == 0
        assert g.vertex_weight(A_SPECIAL) == fam.alpha
        for i in range(collection.T):
            assert g.has_edge(A_SPECIAL, svert(i))
            assert g.has_edge(B_SPECIAL, scomp(i))

    def test_input_weights(self, fam, rng):
        x, y = random_input_pairs(fam.k_bits, 1, rng)[0]
        g = fam.build(x, y)
        for i in range(fam.k_bits):
            assert g.vertex_weight(svert(i)) == (1 if x[i] else fam.alpha)
            assert g.vertex_weight(scomp(i)) == (1 if y[i] else fam.alpha)

    def test_definition_1_1(self, fam):
        validate_family(fam)

    def test_cut_is_theta_ell(self, fam):
        assert len(fam.cut_edges()) == fam.ell + 1

    def test_alpha_must_exceed_r(self, collection):
        with pytest.raises(ValueError):
            KMdsFamily(collection, k=2, alpha=collection.r)

    def test_k_must_be_at_least_two(self, collection):
        with pytest.raises(ValueError):
            KMdsFamily(collection, k=1)


class TestLemma43:
    def test_iff_sweep(self, fam, rng):
        report = verify_iff(fam, random_input_pairs(fam.k_bits, 6, rng),
                            negate=True)
        assert report.true_instances and report.false_instances

    def test_gap(self, fam, rng):
        x, y = random_intersecting_pair(fam.k_bits, rng)
        assert fam.optimum(fam.build(x, y)) == 2
        x, y = random_disjoint_pair(fam.k_bits, rng)
        assert fam.optimum(fam.build(x, y)) > fam.no_weight_exceeds

    def test_gap_ratio(self, fam):
        assert fam.gap_ratio() == fam.collection.r / 2


class TestKGreaterThanTwo:
    def test_paths_subdivided(self, collection):
        fam3 = KMdsFamily(collection, k=3)
        g = fam3.fixed_graph()
        # no direct S_i - a_j edges anymore
        for i in range(collection.T):
            for j in range(fam3.ell):
                assert not g.has_edge(svert(i), avert(j))
        path_vertices = [v for v in g.vertices()
                         if isinstance(v, tuple) and v[0] == "path"]
        assert path_vertices

    def test_lemma_44(self, collection, rng):
        fam3 = KMdsFamily(collection, k=3)
        validate_family(fam3)
        x, y = random_intersecting_pair(collection.T, rng)
        assert fam3.optimum(fam3.build(x, y)) == 2
        x, y = random_disjoint_pair(collection.T, rng)
        assert fam3.optimum(fam3.build(x, y)) > collection.r

    def test_iff_sweep_k3(self, collection, rng):
        fam3 = KMdsFamily(collection, k=3)
        report = verify_iff(fam3, random_input_pairs(collection.T, 4, rng),
                            negate=True)
        assert report.checked == 4
