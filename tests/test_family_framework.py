"""Definition 1.1 validator and Theorem 1.1 bound tests."""

import random

import pytest

from repro.cc.functions import DISJ, random_input_pairs
from repro.core.family import (
    FamilyValidationError,
    IffReport,
    LowerBoundGraphFamily,
    theorem_1_1_bound,
    validate_family,
    verify_iff,
)
from repro.core.mds import MdsFamily
from repro.graphs import Graph


class _BrokenCutFamily(LowerBoundGraphFamily):
    """Violates Definition 1.1: the cut depends on x."""

    @property
    def k_bits(self):
        return 2

    def build(self, x, y):
        g = Graph()
        g.add_vertices(["a0", "a1", "b0", "b1"])
        g.add_edge("a0", "b0")
        if x[0]:
            g.add_edge("a1", "b1")  # cut edge toggled by x
        return g

    def alice_vertices(self):
        return {"a0", "a1"}

    def predicate(self, graph):
        return graph.m >= 2


class _LeakyFamily(LowerBoundGraphFamily):
    """Violates Definition 1.1: G[VA] depends on y."""

    @property
    def k_bits(self):
        return 2

    def build(self, x, y):
        g = Graph()
        g.add_vertices(["a0", "a1", "b0", "b1"])
        g.add_edge("a0", "b0")
        if y[0]:
            g.add_edge("a0", "a1")
        return g

    def alice_vertices(self):
        return {"a0", "a1"}

    def predicate(self, graph):
        return True


class TestValidator:
    def test_accepts_mds_family(self):
        validate_family(MdsFamily(4))

    def test_rejects_input_dependent_cut(self):
        with pytest.raises(FamilyValidationError):
            validate_family(_BrokenCutFamily())

    def test_rejects_cross_dependence(self):
        with pytest.raises(FamilyValidationError):
            validate_family(_LeakyFamily())


class TestVerifyIff:
    def test_mismatch_detected(self, rng):
        fam = MdsFamily(4)
        pairs = random_input_pairs(16, 2, rng)
        # without negate, the MDS predicate tracks ¬DISJ, so this fails
        with pytest.raises(FamilyValidationError):
            verify_iff(fam, pairs, negate=False)

    def test_report_counts(self, rng):
        fam = MdsFamily(4)
        pairs = random_input_pairs(16, 4, rng)
        report = verify_iff(fam, pairs, negate=True)
        assert report.checked == 4
        assert report.true_instances + report.false_instances == 4
        assert "4 input pairs" in str(report)


class TestTheoremBound:
    def test_bound_positive_and_growing(self):
        bounds = [theorem_1_1_bound(MdsFamily(k)) for k in (4, 8, 16)]
        assert all(b > 0 for b in bounds)
        assert bounds[0] < bounds[1] < bounds[2]

    def test_bound_formula(self):
        fam = MdsFamily(4)
        n = fam.n_vertices()
        ecut = len(fam.cut_edges())
        import math

        expected = fam.k_bits / (ecut * math.log2(n))
        assert abs(theorem_1_1_bound(fam) - expected) < 1e-12

    def test_describe_keys(self):
        d = MdsFamily(4).describe()
        assert {"family", "K", "n", "m", "ecut", "function",
                "implied_bound"} <= set(d)
