"""Figure 3 / Theorem 2.8 family tests (Claims 2.9-2.12, Lemma 2.4)."""

import pytest

from repro.cc.functions import (
    disjointness,
    random_disjoint_pair,
    random_input_pairs,
    random_intersecting_pair,
)
from repro.core.family import validate_family, verify_iff
from repro.core.maxcut import (
    CA,
    CA_BAR,
    CB,
    NA,
    NB,
    MaxCutFamily,
    bin_vertices,
    fvert,
    row,
    tvert,
)
from repro.solvers import cut_weight, max_cut


@pytest.fixture(scope="module")
def fam():
    return MaxCutFamily(2)


class TestConstruction:
    def test_vertex_count(self, fam):
        # 4k rows + 8 log k bit vertices + 5 specials
        assert fam.n_vertices() == 4 * 2 + 8 * 1 + 5

    def test_heavy_edges(self, fam):
        g = fam.fixed_graph()
        heavy = fam.heavy
        assert g.edge_weight(CA, NA) == heavy
        assert g.edge_weight(CA, CA_BAR) == heavy
        assert g.edge_weight(CA_BAR, CB) == heavy
        assert g.edge_weight(CB, NB) == heavy

    def test_four_cycles(self, fam):
        g = fam.fixed_graph()
        cyc = [tvert("A1", 0), fvert("A1", 0), tvert("B1", 0), fvert("B1", 0)]
        for i in range(4):
            assert g.edge_weight(cyc[i], cyc[(i + 1) % 4]) == fam.heavy

    def test_row_weights(self, fam):
        g = fam.fixed_graph()
        k = fam.k
        assert g.edge_weight(row("A1", 0), CA) == 2 * k * k * fam.log_k - k * k
        for v in bin_vertices("A1", 1, fam.log_k):
            assert g.edge_weight(row("A1", 1), v) == 2 * k * k

    def test_n_edge_weights_sum_to_row_sums(self, fam, rng):
        """w(a^i_1, NA) = Σ_j x_{i,j}: total weight from a row to its
        opposite set plus N-vertex is always exactly k."""
        x, y = random_input_pairs(4, 2, rng)[0]
        g = fam.build(x, y)
        k = fam.k
        for i in range(k):
            total = g.edge_weight(row("A1", i), NA)
            for j in range(k):
                if g.has_edge(row("A1", i), row("A2", j)):
                    total += g.edge_weight(row("A1", i), row("A2", j))
            assert total == k

    def test_input_edges_on_zeros(self, fam, rng):
        x, y = random_input_pairs(4, 2, rng)[1]
        g = fam.build(x, y)
        k = fam.k
        for i in range(k):
            for j in range(k):
                assert g.has_edge(row("A1", i), row("A2", j)) == \
                    (x[i * k + j] == 0)

    def test_definition_1_1(self, fam):
        validate_family(fam)

    def test_target_weight_formula(self):
        fam4 = MaxCutFamily(4)
        k, lg = 4, 2
        assert fam4.target_weight == \
            k ** 4 * (8 * lg + 4) + k ** 3 * (12 * lg - 4) + 4 * k * k + 4 * k


class TestLemma24:
    def test_iff_sweep(self, fam, rng):
        pairs = random_input_pairs(4, 4, rng)
        report = verify_iff(fam, pairs, negate=True)
        assert report.true_instances and report.false_instances

    def test_witness_reaches_m(self, fam, rng):
        x, y = random_intersecting_pair(4, rng)
        side = fam.witness_side(x, y)
        assert cut_weight(fam.build(x, y), side) >= fam.target_weight

    def test_disjoint_max_below_m(self, fam, rng):
        x, y = random_disjoint_pair(4, rng)
        value, __ = max_cut(fam.build(x, y))
        assert value < fam.target_weight

    def test_claims_on_exact_optimum(self, fam, rng):
        """Claims 2.9-2.11 hold for a genuine maximum cut."""
        x, y = random_intersecting_pair(4, rng)
        g = fam.build(x, y)
        value, side = max_cut(g)
        assert fam.structural_claims_hold(side, g)

    def test_claims_reject_garbage(self, fam, rng):
        x, y = random_intersecting_pair(4, rng)
        g = fam.build(x, y)
        assert not fam.structural_claims_hold([CA, NA], g)

    def test_claim_212_fixed_part(self, fam, rng):
        """Claim 2.12: the non-row/N cut weight of the witness cut equals
        M' regardless of the inputs."""
        for __ in range(3):
            x, y = random_intersecting_pair(4, rng)
            g = fam.build(x, y)
            side = set(fam.witness_side(x, y))
            row_n = set()
            for s in ("A1", "A2", "B1", "B2"):
                row_n.update(row(s, j) for j in range(fam.k))
            row_n.update((NA, NB))
            fixed_weight = sum(
                g.edge_weight(u, v) for u, v in g.edges()
                if ((u in side) != (v in side))
                and not (u in row_n and v in row_n))
            assert fixed_weight == fam.fixed_cut_part

    def test_witness_at_k4(self, rng):
        fam4 = MaxCutFamily(4)
        x, y = random_intersecting_pair(16, rng)
        side = fam4.witness_side(x, y)
        assert cut_weight(fam4.build(x, y), side) >= fam4.target_weight
