"""CLI smoke tests."""

import pytest

from repro.cli import main


def test_families_lists(capsys):
    main(["families"])
    out = capsys.readouterr().out
    assert "mds" in out and "maxcut" in out and "steiner" in out


def test_describe(capsys):
    main(["describe", "mds", "-k", "4"])
    out = capsys.readouterr().out
    assert "MdsFamily" in out
    assert "implied_bound" in out


def test_verify(capsys):
    main(["verify", "mvc", "-k", "2", "--pairs", "4"])
    out = capsys.readouterr().out
    assert "OK" in out
    assert "4 input pairs" in out


def test_unknown_family():
    with pytest.raises(SystemExit):
        main(["describe", "nope"])


def test_experiments_subset(capsys):
    main(["experiments", "--only", "E-T1.1-simulation"])
    out = capsys.readouterr().out
    assert "E-T1.1-simulation" in out
    assert "PASS" in out
