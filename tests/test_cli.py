"""CLI smoke tests."""

import pytest

from repro.cli import main


def test_families_lists(capsys):
    main(["families"])
    out = capsys.readouterr().out
    assert "mds" in out and "maxcut" in out and "steiner" in out


def test_describe(capsys):
    main(["describe", "mds", "-k", "4"])
    out = capsys.readouterr().out
    assert "MdsFamily" in out
    assert "implied_bound" in out


def test_verify(capsys):
    main(["verify", "mvc", "-k", "2", "--pairs", "4"])
    out = capsys.readouterr().out
    assert "OK" in out
    assert "4 input pairs" in out


def test_unknown_family():
    with pytest.raises(SystemExit):
        main(["describe", "nope"])


def test_experiments_subset(capsys):
    main(["experiments", "--only", "E-T1.1-simulation"])
    out = capsys.readouterr().out
    assert "E-T1.1-simulation" in out
    assert "PASS" in out


def _load_record_module():
    # benchmarks/record.py is a script, not a package module; load it
    # by path (it puts src/ on sys.path itself)
    import importlib.util
    import pathlib

    path = (pathlib.Path(__file__).resolve().parents[1]
            / "benchmarks" / "record.py")
    spec = importlib.util.spec_from_file_location("bench_record", path)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


class TestBenchHistoryErrors:
    """Regression: a corrupt/empty BENCH_simulator.json used to crash
    `repro report bench` and `record.py --compare` with a raw
    traceback; both now exit nonzero with a one-line message."""

    def test_report_bench_truncated_json(self, tmp_path):
        bad = tmp_path / "BENCH.json"
        bad.write_text('{"simulator_flood": [')
        with pytest.raises(SystemExit) as exc:
            main(["report", "bench", str(bad)])
        assert "not valid JSON" in str(exc.value)

    def test_report_bench_empty_file(self, tmp_path):
        bad = tmp_path / "BENCH.json"
        bad.write_text("")
        with pytest.raises(SystemExit) as exc:
            main(["report", "bench", str(bad)])
        assert "not valid JSON" in str(exc.value)

    def test_report_bench_wrong_shape(self, tmp_path):
        bad = tmp_path / "BENCH.json"
        bad.write_text("[1, 2, 3]")
        with pytest.raises(SystemExit) as exc:
            main(["report", "bench", str(bad)])
        assert "wrong shape" in str(exc.value)

    def test_report_bench_missing_file(self, tmp_path):
        with pytest.raises(SystemExit) as exc:
            main(["report", "bench", str(tmp_path / "absent.json")])
        assert "no bench history" in str(exc.value)

    def test_record_compare_corrupt_returns_nonzero(self, tmp_path, capsys):
        rec = _load_record_module()
        bad = tmp_path / "BENCH.json"
        bad.write_text('{"x": [')
        assert rec.main(["--compare", "--file", str(bad)]) == 1
        assert "not valid JSON" in capsys.readouterr().err

    def test_record_compare_missing_returns_nonzero(self, tmp_path, capsys):
        rec = _load_record_module()
        absent = tmp_path / "absent.json"
        assert rec.main(["--compare", "--file", str(absent)]) == 1
        assert "no bench history" in capsys.readouterr().err

    def test_record_run_corrupt_returns_nonzero(self, tmp_path, capsys):
        rec = _load_record_module()
        bad = tmp_path / "BENCH.json"
        bad.write_text("[]")
        assert rec.main(["--quick", "--file", str(bad)]) == 1
        assert "wrong shape" in capsys.readouterr().err


def test_experiments_engine_flag(capsys):
    main(["experiments", "--only", "E-T1.1-simulation",
          "--engine", "vectorized"])
    out = capsys.readouterr().out
    assert "E-T1.1-simulation" in out
    assert "PASS" in out
