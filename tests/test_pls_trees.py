"""PLS tests: spanning tree, acyclicity, simple path, Hamiltonian cycle
verification, and negations (Lemma 5.1 items 10-12)."""

import networkx as nx
import pytest

from repro.graphs import Graph, cycle_graph, path_graph, random_graph
from repro.pls import (
    AcyclicityPls,
    HamiltonianCycleVerificationPls,
    NotHamiltonianCyclePls,
    NotSpanningTreePls,
    SimplePathPls,
    SpanningTreePls,
    check_completeness,
    check_soundness_samples,
    max_label_bits,
)
from repro.pls.scheme import PlsInstance, edge_key
from tests.conftest import connected_random_graph


def with_h(g, edges, **kw):
    return PlsInstance(graph=g,
                       subgraph=frozenset(edge_key(u, v) for u, v in edges),
                       **kw)


def bfs_tree_edges(g):
    root = sorted(g.vertices(), key=repr)[0]
    return list(nx.bfs_tree(g.to_networkx(), root).edges())


class TestSpanningTree:
    def test_completeness(self, rng):
        g = connected_random_graph(8, 0.45, rng)
        check_completeness(SpanningTreePls(), with_h(g, bfs_tree_edges(g)))

    def test_label_size_logarithmic(self, rng):
        g = connected_random_graph(10, 0.4, rng)
        yes = with_h(g, bfs_tree_edges(g))
        bits = check_completeness(SpanningTreePls(), yes)
        assert bits <= 400  # O(log n) fields plus python-label overhead

    def test_soundness_missing_edge(self, rng):
        g = connected_random_graph(8, 0.45, rng)
        tree = bfs_tree_edges(g)
        yes = with_h(g, tree)
        no = with_h(g, tree[:-1])
        check_soundness_samples(SpanningTreePls(), no, rng,
                                donor_instances=[yes])

    def test_soundness_extra_edge(self, rng):
        g = connected_random_graph(8, 0.5, rng)
        tree = bfs_tree_edges(g)
        extra = next((u, v) for u, v in g.edges()
                     if (u, v) not in tree and (v, u) not in tree)
        yes = with_h(g, tree)
        no = with_h(g, tree + [extra])
        check_soundness_samples(SpanningTreePls(), no, rng,
                                donor_instances=[yes])

    def test_negation_completeness_all_cases(self, rng):
        g = connected_random_graph(8, 0.5, rng)
        tree = bfs_tree_edges(g)
        scheme = NotSpanningTreePls()
        # case 0: isolated vertex
        check_completeness(scheme, with_h(g, tree[1:]))
        # case 1: cycle
        extra = next((u, v) for u, v in g.edges()
                     if (u, v) not in tree and (v, u) not in tree)
        check_completeness(scheme, with_h(g, tree + [extra]))
        # case 2: forest with two components (drop a non-pendant edge)
        h = [e for e in tree]
        # removing any tree edge disconnects; ensure no isolated vertex
        for i, e in enumerate(h):
            rest = h[:i] + h[i + 1:]
            degree = {}
            for u, v in rest:
                degree[u] = degree.get(u, 0) + 1
                degree[v] = degree.get(v, 0) + 1
            if all(degree.get(v, 0) > 0 for v in g.vertices()):
                check_completeness(scheme, with_h(g, rest))
                break

    def test_negation_soundness(self, rng):
        g = connected_random_graph(8, 0.5, rng)
        tree = bfs_tree_edges(g)
        yes = with_h(g, tree)  # NO instance for the negation
        donor = with_h(g, tree[:-1])
        check_soundness_samples(NotSpanningTreePls(), yes, rng,
                                donor_instances=[donor])


class TestAcyclicity:
    def test_forest_accepted(self, rng):
        g = connected_random_graph(8, 0.5, rng)
        check_completeness(AcyclicityPls(), with_h(g, bfs_tree_edges(g)))

    def test_partial_forest_accepted(self, rng):
        g = connected_random_graph(8, 0.5, rng)
        check_completeness(AcyclicityPls(), with_h(g, bfs_tree_edges(g)[:3]))

    def test_empty_h_accepted(self, rng):
        g = connected_random_graph(6, 0.5, rng)
        check_completeness(AcyclicityPls(), with_h(g, []))

    def test_cycle_rejected(self, rng):
        g = cycle_graph(6)
        yes = with_h(g, g.edges()[:5])
        no = with_h(g, g.edges())
        check_soundness_samples(AcyclicityPls(), no, rng,
                                donor_instances=[yes])


class TestSimplePath:
    def test_path_accepted(self, rng):
        g = connected_random_graph(8, 0.5, rng)
        vs = g.vertices()
        pth = nx.shortest_path(g.to_networkx(), vs[0], vs[4])
        if len(pth) >= 2:
            check_completeness(SimplePathPls(),
                               with_h(g, list(zip(pth, pth[1:]))))

    def test_star_rejected(self, rng):
        g = connected_random_graph(8, 0.6, rng)
        center = max(g.vertices(), key=g.degree)
        nbrs = sorted(g.neighbors(center), key=repr)[:3]
        vs = g.vertices()
        pth = nx.shortest_path(g.to_networkx(), vs[0], vs[4])
        donor = with_h(g, list(zip(pth, pth[1:])))
        no = with_h(g, [(center, w) for w in nbrs])
        check_soundness_samples(SimplePathPls(), no, rng,
                                donor_instances=[donor])

    def test_two_paths_rejected(self):
        import random

        g = cycle_graph(8)
        # two disjoint 2-edge paths
        no = with_h(g, [(0, 1), (1, 2), (4, 5), (5, 6)])
        donor = with_h(g, [(0, 1), (1, 2)])
        check_soundness_samples(SimplePathPls(), no, random.Random(5),
                                donor_instances=[donor])

    def test_cycle_not_a_path(self, rng):
        g = cycle_graph(5)
        donor = with_h(g, g.edges()[:4])
        no = with_h(g, g.edges())
        check_soundness_samples(SimplePathPls(), no, rng,
                                donor_instances=[donor])


class TestHamiltonianCycleVerification:
    def test_cycle_accepted(self, rng):
        g = cycle_graph(7)
        bits = check_completeness(HamiltonianCycleVerificationPls(),
                                  with_h(g, g.edges()))
        assert bits <= 200

    def test_missing_edge_rejected(self, rng):
        g = cycle_graph(7)
        yes = with_h(g, g.edges())
        no = with_h(g, g.edges()[:-1])
        check_soundness_samples(HamiltonianCycleVerificationPls(), no, rng,
                                donor_instances=[yes])

    def test_two_cycles_rejected(self, rng):
        g = Graph()
        for i in range(4):
            g.add_edge(("x", i), ("x", (i + 1) % 4))
            g.add_edge(("y", i), ("y", (i + 1) % 4))
        g.add_edge(("x", 0), ("y", 0))
        h = [e for e in g.edges()
             if not (("x", 0) in e and ("y", 0) in e)]
        no = with_h(g, h)
        cyc = cycle_graph(8)
        donor = with_h(cyc, cyc.edges())
        # donor graph differs; soundness via random/zero labels only
        check_soundness_samples(HamiltonianCycleVerificationPls(), no, rng)

    def test_negation_degree_case(self, rng):
        g = cycle_graph(7)
        check_completeness(NotHamiltonianCyclePls(),
                           with_h(g, g.edges()[:-1]))

    def test_negation_two_cycle_case(self, rng):
        g = Graph()
        for i in range(4):
            g.add_edge(("x", i), ("x", (i + 1) % 4))
            g.add_edge(("y", i), ("y", (i + 1) % 4))
        g.add_edge(("x", 0), ("y", 0))
        h = [e for e in g.edges()
             if not (("x", 0) in e and ("y", 0) in e)]
        check_completeness(NotHamiltonianCyclePls(), with_h(g, h))

    def test_negation_soundness(self, rng):
        g = cycle_graph(7)
        yes_for_negation = with_h(g, g.edges()[:-1])
        no_for_negation = with_h(g, g.edges())
        check_soundness_samples(NotHamiltonianCyclePls(), no_for_negation,
                                rng, donor_instances=[yes_for_negation])
