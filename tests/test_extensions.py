"""Tests for the extension modules: the LOCAL-model separation,
randomized protocols, gap disjointness, and triangle detection."""

import math
import random

import pytest

from repro.cc import (
    Channel,
    equality,
    equality_fingerprint_protocol,
    estimate_error,
    gap_disjointness,
    intersection_size,
)
from repro.cc.functions import random_input_pairs
from repro.congest.algorithms.collect import run_universal_exact
from repro.congest.algorithms.local_model import run_local_universal
from repro.graphs import complete_graph, cycle_graph, random_graph
from repro.limits import PartitionedInstance, triangle_detection_protocol
from repro.solvers import is_dominating_set, min_dominating_set
from tests.conftest import connected_random_graph


class TestLocalModel:
    def _solver(self):
        def solver(g):
            ds = set(min_dominating_set(g))
            return {u: (u in ds) for u in g.vertices()}

        return solver

    def test_solves_correctly(self, rng):
        g = connected_random_graph(10, 0.35, rng)
        outputs, sim = run_local_universal(g, self._solver())
        members = [v for v, b in outputs.items() if b]
        assert is_dominating_set(g, members)
        assert len(members) == len(min_dominating_set(g))

    def test_rounds_track_diameter(self, rng):
        g = cycle_graph(16)  # diameter 8
        __, sim = run_local_universal(g, self._solver())
        assert sim.rounds <= g.diameter() + 4

    def test_congest_local_separation(self, rng):
        """On the same instance LOCAL finishes in ~D rounds while the
        CONGEST collect-and-solve needs Θ(m + n) — the separation the
        paper's approximation bounds rest on."""
        g = connected_random_graph(14, 0.5, rng)
        __, local_sim = run_local_universal(g, self._solver())

        def congest_solver(gg):
            return 0, {u: 0 for u in gg.vertices()}

        __, congest_sim = run_universal_exact(g, congest_solver)
        assert local_sim.rounds <= g.diameter() + 4
        assert congest_sim.rounds >= 2 * g.n  # leader + BFS phases alone

    def test_local_messages_exceed_congest_bandwidth(self, rng):
        g = connected_random_graph(12, 0.5, rng)
        __, sim = run_local_universal(g, self._solver())
        from repro.congest.model import default_bandwidth

        assert sim.max_message_bits > default_bandwidth(g.n)


class TestRandomizedEquality:
    def test_equal_inputs_always_accept(self, rng):
        x = tuple(rng.randint(0, 1) for __ in range(20))
        for seed in range(10):
            ch = Channel()
            assert equality_fingerprint_protocol(
                x, x, ch, random.Random(seed))

    def test_cost_independent_of_k(self, rng):
        for k in (16, 256):
            x = tuple([1] * k)
            ch = Channel()
            equality_fingerprint_protocol(x, x, ch, random.Random(1),
                                          repetitions=8)
            assert ch.bits <= 16  # 8 fingerprint bits + answer + framing

    def test_error_rate_bounded(self, rng):
        pairs = []
        for __ in range(4):
            x = tuple(rng.randint(0, 1) for _ in range(12))
            y = list(x)
            y[rng.randrange(12)] ^= 1
            pairs.append((x, tuple(y)))
        err = estimate_error(equality_fingerprint_protocol, equality,
                             pairs, trials=40, seed=3, repetitions=6)
        assert err <= 0.1  # analytic bound 2^-6 ≈ 0.016

    def test_one_repetition_errs_sometimes(self, rng):
        pairs = [((1, 0, 0, 0), (0, 0, 0, 0))]
        err = estimate_error(equality_fingerprint_protocol, equality,
                             pairs, trials=300, seed=5, repetitions=1)
        assert 0.3 <= err <= 0.7  # a single parity check misses half


class TestGapDisjointness:
    def test_disjoint_true(self):
        assert gap_disjointness((1, 0), (0, 1), gap=2)

    def test_large_intersection_false(self):
        assert not gap_disjointness((1, 1), (1, 1), gap=2)

    def test_promise_violation(self):
        with pytest.raises(ValueError):
            gap_disjointness((1, 0), (1, 0), gap=2)

    def test_intersection_size(self):
        assert intersection_size((1, 1, 0), (1, 0, 0)) == 1


class TestTriangleDetection:
    def _has_triangle(self, g):
        for u, v in g.edges():
            if g.neighbors(u) & g.neighbors(v):
                return True
        return False

    def test_matches_ground_truth(self, rng):
        for __ in range(10):
            g = random_graph(9, rng.uniform(0.15, 0.5), rng)
            vs = g.vertices()
            inst = PartitionedInstance(graph=g, alice=set(vs[:4]))
            ch = Channel()
            assert triangle_detection_protocol(inst, ch) == \
                self._has_triangle(g)
            assert ch.bits <= 4  # two booleans

    def test_cross_cut_triangle_found(self):
        g = complete_graph(3)
        inst = PartitionedInstance(graph=g, alice={0})
        ch = Channel()
        assert triangle_detection_protocol(inst, ch)

    def test_triangle_free(self):
        g = cycle_graph(6)
        inst = PartitionedInstance(graph=g, alice={0, 1, 2})
        ch = Channel()
        assert not triangle_detection_protocol(inst, ch)
