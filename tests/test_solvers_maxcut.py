"""Exact max-cut solver tests."""

import pytest

from repro.graphs import Graph, complete_graph, cycle_graph, path_graph, random_graph
from repro.solvers import cut_weight, max_cut, max_cut_value
from repro.solvers.maxcut import max_cut_vectorized
from tests.conftest import brute_force_max_cut


class TestCutWeight:
    def test_empty_side(self):
        assert cut_weight(cycle_graph(4), []) == 0

    def test_full_side(self):
        assert cut_weight(cycle_graph(4), cycle_graph(4).vertices()) == 0

    def test_bipartition_of_even_cycle(self):
        assert cut_weight(cycle_graph(6), [0, 2, 4]) == 6

    def test_weighted(self):
        g = path_graph(3)
        g.set_edge_weight(0, 1, 5)
        g.set_edge_weight(1, 2, 7)
        assert cut_weight(g, [1]) == 12


class TestMaxCut:
    def test_even_cycle(self):
        assert max_cut_value(cycle_graph(6)) == 6

    def test_odd_cycle(self):
        assert max_cut_value(cycle_graph(5)) == 4

    def test_complete_graph(self):
        # K_n max cut = floor(n/2)*ceil(n/2)
        for n in (3, 4, 5, 6):
            assert max_cut_value(complete_graph(n)) == (n // 2) * ((n + 1) // 2)

    def test_trivial_graphs(self):
        g = Graph()
        assert max_cut_value(g) == 0
        g.add_vertex(1)
        assert max_cut_value(g) == 0

    def test_side_achieves_value(self, rng):
        for __ in range(8):
            g = random_graph(9, 0.5, rng)
            value, side = max_cut(g)
            assert cut_weight(g, side) == value

    def test_matches_brute_force(self, rng):
        for __ in range(8):
            g = random_graph(8, 0.5, rng)
            for u, v in g.edges():
                g.set_edge_weight(u, v, rng.randint(1, 9))
            assert max_cut_value(g) == brute_force_max_cut(g)

    def test_limit_enforced(self):
        with pytest.raises(ValueError):
            max_cut(complete_graph(30))

    def test_vectorized_matches_gray_code(self, rng):
        for __ in range(5):
            g = random_graph(10, 0.5, rng)
            for u, v in g.edges():
                g.set_edge_weight(u, v, rng.randint(1, 5))
            v1, __s = max_cut_vectorized(g)
            # force the Gray-code path by lowering the vectorized window
            from repro.solvers.maxcut import max_cut as mc
            v2, __s2 = mc(g, limit=16) if g.n <= 16 else (v1, None)
            assert v1 == brute_force_max_cut(g)
            assert v2 == v1

    def test_heavy_edge_dominates(self):
        g = cycle_graph(4)
        g.set_edge_weight(0, 1, 100)
        value, side = max_cut(g)
        assert value >= 100
        s = set(side)
        assert (0 in s) != (1 in s)


class TestDispatch:
    """Regressions for the vectorized-window dispatch in max_cut."""

    def _mid_size_graph(self):
        import random
        g = random_graph(18, 0.35, random.Random(21))
        return g

    def test_falls_back_to_gray_code_without_numpy(self, monkeypatch):
        """No numpy must mean the Gray-code walk, not an ImportError."""
        import repro.solvers.maxcut as mc
        from repro.solvers import clear_cache

        def no_numpy(graph, limit=25):
            raise ImportError("No module named 'numpy'")

        monkeypatch.setattr(mc, "max_cut_vectorized", no_numpy)
        clear_cache()
        g = self._mid_size_graph()
        value, side = mc.max_cut(g)
        assert cut_weight(g, side) == value
        clear_cache()
        assert mc.max_cut_value(g) == value  # restored vectorized agrees

    def test_caller_limit_reaches_vectorized_path(self, monkeypatch):
        import repro.solvers.maxcut as mc
        from repro.solvers import clear_cache

        captured = {}
        real = mc.max_cut_vectorized

        def spy(graph, limit=25):
            captured["limit"] = limit
            return real(graph, limit=limit)

        monkeypatch.setattr(mc, "max_cut_vectorized", spy)
        # non-integral weights keep the meet-in-the-middle fast path out
        # of the way, so the chunked sweep handles the window
        monkeypatch.setattr(mc, "_integral_weights", lambda g: False)
        clear_cache()
        g = self._mid_size_graph()
        mc.max_cut(g, limit=20)
        assert captured["limit"] == 20

    def test_mitm_handles_the_integral_window(self, monkeypatch):
        """Integral weights dispatch to meet-in-the-middle, which must
        agree with the chunked sweep it replaces."""
        import repro.solvers.maxcut as mc
        from repro.solvers import clear_cache

        g = self._mid_size_graph()
        expected = mc.max_cut_vectorized(g)

        def unexpected(graph, limit=25):
            raise AssertionError("integral window should use mitm")

        monkeypatch.setattr(mc, "max_cut_vectorized", unexpected)
        clear_cache()
        assert mc.max_cut(g) == expected
        clear_cache()

    def test_caller_limit_still_enforced(self):
        g = self._mid_size_graph()
        with pytest.raises(ValueError):
            max_cut(g, limit=17)

    def test_docstring_names_the_pinned_vertex(self):
        import repro.solvers.maxcut as mc
        assert "n−1" in mc.__doc__
