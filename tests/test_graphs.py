"""Unit tests for the graph substrate."""

import pytest

from repro.graphs import (
    DiGraph,
    Graph,
    GraphError,
    complete_graph,
    cycle_graph,
    path_graph,
    random_graph,
)


class TestGraphBasics:
    def test_empty(self):
        g = Graph()
        assert g.n == 0
        assert g.m == 0
        assert g.vertices() == []
        assert g.edges() == []

    def test_add_vertex_idempotent(self):
        g = Graph()
        g.add_vertex("a")
        g.add_vertex("a")
        assert g.n == 1

    def test_add_edge_creates_endpoints(self):
        g = Graph()
        g.add_edge(1, 2)
        assert g.n == 2
        assert g.m == 1
        assert g.has_edge(1, 2)
        assert g.has_edge(2, 1)

    def test_self_loop_rejected(self):
        g = Graph()
        with pytest.raises(GraphError):
            g.add_edge(1, 1)

    def test_parallel_edge_collapses(self):
        g = Graph()
        g.add_edge(1, 2)
        g.add_edge(2, 1)
        assert g.m == 1

    def test_degrees(self):
        g = complete_graph(5)
        assert all(g.degree(v) == 4 for v in g.vertices())
        assert g.max_degree() == 4

    def test_clique(self):
        g = Graph()
        g.add_clique(range(4))
        assert g.m == 6

    def test_remove_edge(self):
        g = cycle_graph(4)
        g.remove_edge(0, 1)
        assert g.m == 3
        with pytest.raises(GraphError):
            g.remove_edge(0, 1)

    def test_remove_vertex(self):
        g = complete_graph(4)
        g.remove_vertex(0)
        assert g.n == 3
        assert g.m == 3

    def test_tuple_labels(self):
        g = Graph()
        g.add_edge(("row", "A1", 0), ("f", "A1", 1))
        assert ("row", "A1", 0) in g

    def test_copy_independent(self):
        g = cycle_graph(4)
        h = g.copy()
        h.remove_edge(0, 1)
        assert g.m == 4
        assert h.m == 3


class TestGraphWeights:
    def test_default_weights(self):
        g = cycle_graph(3)
        assert g.edge_weight(0, 1) == 1.0
        assert g.vertex_weight(0) == 1.0

    def test_explicit_weights(self):
        g = Graph()
        g.add_edge("a", "b", weight=5)
        g.add_vertex("a", weight=3)
        assert g.edge_weight("a", "b") == 5
        assert g.vertex_weight("a") == 3

    def test_set_edge_weight_requires_edge(self):
        g = Graph()
        g.add_vertices([1, 2])
        with pytest.raises(GraphError):
            g.set_edge_weight(1, 2, 4)

    def test_total_edge_weight(self):
        g = cycle_graph(4)
        for u, v in g.edges():
            g.set_edge_weight(u, v, 2)
        assert g.total_edge_weight() == 8

    def test_weights_survive_copy(self):
        g = Graph()
        g.add_edge(1, 2, weight=7)
        g.set_vertex_weight(1, 9)
        h = g.copy()
        assert h.edge_weight(1, 2) == 7
        assert h.vertex_weight(1) == 9


class TestGraphStructure:
    def test_bfs_distances(self):
        g = path_graph(5)
        dist = g.bfs_distances(0)
        assert dist == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}

    def test_connected_components(self):
        g = Graph()
        g.add_edge(1, 2)
        g.add_edge(3, 4)
        g.add_vertex(5)
        comps = g.connected_components()
        assert sorted(len(c) for c in comps) == [1, 2, 2]

    def test_is_connected(self):
        assert cycle_graph(5).is_connected()
        g = cycle_graph(5)
        g.add_vertex("lonely")
        assert not g.is_connected()

    def test_diameter(self):
        assert path_graph(5).diameter() == 4
        assert cycle_graph(6).diameter() == 3
        assert complete_graph(4).diameter() == 1

    def test_diameter_disconnected_raises(self):
        g = Graph()
        g.add_vertices([1, 2])
        with pytest.raises(GraphError):
            g.diameter()

    def test_induced_subgraph(self):
        g = complete_graph(5)
        sub = g.induced_subgraph([0, 1, 2])
        assert sub.n == 3
        assert sub.m == 3

    def test_relabel(self):
        g = cycle_graph(3)
        h = g.relabel({0: "zero"})
        assert "zero" in h
        assert h.has_edge("zero", 1)

    def test_relabel_non_injective_rejected(self):
        g = cycle_graph(3)
        with pytest.raises(GraphError):
            g.relabel({0: 1})

    def test_to_networkx_roundtrip(self):
        g = cycle_graph(5)
        nxg = g.to_networkx()
        assert nxg.number_of_nodes() == 5
        assert nxg.number_of_edges() == 5


class TestDiGraph:
    def test_directed_edges(self):
        g = DiGraph()
        g.add_edge("a", "b")
        assert g.has_edge("a", "b")
        assert not g.has_edge("b", "a")
        assert g.out_degree("a") == 1
        assert g.in_degree("b") == 1

    def test_successors_predecessors(self):
        g = DiGraph()
        g.add_edge(1, 2)
        g.add_edge(1, 3)
        g.add_edge(4, 1)
        assert g.successors(1) == {2, 3}
        assert g.predecessors(1) == {4}

    def test_to_undirected(self):
        g = DiGraph()
        g.add_edge(1, 2)
        g.add_edge(2, 1)
        und = g.to_undirected()
        assert und.m == 1

    def test_self_loop_rejected(self):
        g = DiGraph()
        with pytest.raises(GraphError):
            g.add_edge(1, 1)

    def test_m_counts_arcs(self):
        g = DiGraph()
        g.add_edge(1, 2)
        g.add_edge(2, 1)
        assert g.m == 2


class TestGenerators:
    def test_cycle_too_small(self):
        with pytest.raises(GraphError):
            cycle_graph(2)

    def test_random_graph_deterministic(self, rng):
        import random

        g1 = random_graph(10, 0.5, random.Random(7))
        g2 = random_graph(10, 0.5, random.Random(7))
        assert sorted(map(repr, g1.edges())) == sorted(map(repr, g2.edges()))

    def test_complete_graph_edge_count(self):
        for n in (1, 2, 5, 8):
            g = complete_graph(n)
            assert g.m == n * (n - 1) // 2


class TestDeterministicIteration:
    """Regression: edge/subgraph iteration must not depend on the
    process hash seed (string/tuple labels iterate sets in hash order),
    or experiment tables differ between the serial and parallel runners."""

    def test_edges_in_canonical_neighbor_order(self):
        g = Graph()
        for leaf in ("b", "a", "d", "c"):
            g.add_edge("hub", leaf)
        assert g.edges() == [("a", "hub"), ("b", "hub"),
                             ("c", "hub"), ("d", "hub")]

    def test_digraph_edges_in_canonical_successor_order(self):
        from repro.graphs import DiGraph

        d = DiGraph()
        for succ in ("b", "a", "c"):
            d.add_edge("s", succ)
        assert list(d.edges()) == [("s", "a"), ("s", "b"), ("s", "c")]

    def test_induced_subgraph_preserves_parent_vertex_order(self):
        g = Graph()
        for v in ("w", "q", "z", "m", "k"):
            g.add_vertex(v)
        g.add_edge("w", "z")
        sub = g.induced_subgraph({"z", "w", "k"})
        assert sub.vertices() == ["w", "z", "k"]

    def test_induced_subgraph_missing_vertex_rejected(self):
        g = Graph()
        g.add_vertex("a")
        with pytest.raises(GraphError):
            g.induced_subgraph({"a", "missing"})


class TestGraphKernel:
    """The lazy kernel layer: cached BFS rows, cache invalidation, and the
    disconnected-diameter early exit."""

    def test_bfs_rows_cached_per_source(self):
        g = path_graph(6)
        kern = g.kernel()
        g.bfs_distances(0)
        g.bfs_distances(0)
        g.bfs_distances(3)
        assert kern.bfs_runs == 2

    def test_all_pairs_distances_matches_bfs(self):
        g = random_graph(12, 0.3, __import__("random").Random(7))
        apd = g.all_pairs_distances()
        for v in g.vertices():
            assert apd[v] == g.bfs_distances(v)

    def test_all_pairs_distances_cached(self):
        g = cycle_graph(8)
        g.all_pairs_distances()
        runs = g.kernel().bfs_runs
        g.all_pairs_distances()
        assert g.kernel().bfs_runs == runs

    def test_diameter_disconnected_stops_early(self):
        g = Graph()
        g.add_edge(0, 1)
        for v in range(2, 40):
            g.add_vertex(v)
        with pytest.raises(GraphError):
            g.diameter()
        # the first BFS already witnesses the disconnection; no full
        # all-sources sweep should have run
        assert g.kernel().bfs_runs <= 1

    def test_mutation_invalidates_kernel(self):
        g = path_graph(4)
        assert g.diameter() == 3
        h0 = g.content_hash()
        g.add_edge(0, 3)
        assert g.diameter() == 2
        assert g.content_hash() != h0

    def test_set_edge_weight_invalidates_content_hash(self):
        g = path_graph(3)
        h0 = g.content_hash()
        g.set_edge_weight(0, 1, 5.0)
        h1 = g.content_hash()
        assert h1 != h0
        # setting the same weight again is a no-op for the caches
        kern = g.kernel()
        g.set_edge_weight(0, 1, 5.0)
        assert g.kernel() is kern
        assert g.content_hash() == h1

    def test_idempotent_mutations_keep_caches(self):
        g = path_graph(4)
        kern = g.kernel()
        g.add_vertex(0)
        g.add_edge(0, 1)
        assert g.kernel() is kern

    def test_copy_does_not_share_caches(self):
        g = path_graph(4)
        g.content_hash()
        h = g.copy()
        h.add_edge(0, 3)
        assert g.content_hash() != h.content_hash()
        assert g.diameter() == 3
        assert h.diameter() == 2

    def test_vertex_weight_change_keeps_structure_caches(self):
        g = path_graph(4)
        kern = g.kernel()
        edges = g.edges()
        h0 = g.content_hash()
        g.set_vertex_weight(2, 7.0)
        # only the content hash depends on vertex weights
        assert g.content_hash() != h0
        assert g.kernel() is kern
        assert g.edges() == edges
        assert g.vertex_weight(2) == 7.0
        # re-setting the same weight is a cache no-op
        h1 = g.content_hash()
        g.set_vertex_weight(2, 7.0)
        assert g.content_hash() == h1

    def test_edge_weight_change_updates_edge_weights(self):
        g = path_graph(4)
        g.edge_weights()
        kern = g.kernel()
        h0 = g.content_hash()
        g.add_edge(1, 2, weight=3.0)  # re-weight an existing edge
        assert g.edge_weights()[(1, 2)] == 3.0
        assert g.total_edge_weight() == 5.0
        assert g.content_hash() != h0
        assert g.kernel() is kern  # adjacency unchanged

    def test_copy_isolated_from_original_mutation(self):
        g = path_graph(4)
        # warm every derived cache before copying
        g.edges(), g.edge_weights(), g.all_pairs_distances()
        g.content_hash(), g.diameter()
        h = g.copy()
        assert h.content_hash() == g.content_hash()
        g.add_edge(0, 3)
        g.set_vertex_weight(1, 9.0)
        # the copy must still answer from the pre-mutation content
        assert h.diameter() == 3
        assert h.edges() == [(0, 1), (1, 2), (2, 3)]
        assert h.vertex_weight(1) == 1.0
        assert h.content_hash() != g.content_hash()

    def test_copy_vertex_weight_diverges_hash(self):
        g = path_graph(3)
        g.content_hash()
        h = g.copy()
        h.set_vertex_weight(0, 4.0)
        assert h.content_hash() != g.content_hash()
        assert g.vertex_weight(0) == 1.0


class TestStaleKernel:
    """Regression: a kernel held across a structural mutation used to
    alias the live adjacency and silently serve torn data; now every
    read checks the generation stamp and raises."""

    def test_reads_after_add_edge_raise(self):
        g = path_graph(4)
        kern = g.kernel()
        kern.bfs_row(0)
        g.add_edge(0, 3)
        for read in (lambda: kern.bfs_row(0),
                     lambda: kern.adjacency(),
                     lambda: kern.neighbor_masks(),
                     lambda: kern.ball_masks(1)):
            with pytest.raises(GraphError, match="stale GraphKernel"):
                read()

    def test_remove_edge_and_vertex_stale_the_kernel(self):
        g = path_graph(4)
        kern = g.kernel()
        g.remove_edge(0, 1)
        with pytest.raises(GraphError):
            kern.adjacency()
        kern = g.kernel()
        g.remove_vertex(3)
        with pytest.raises(GraphError):
            kern.bfs_row(0)

    def test_weight_only_mutation_does_not_stale(self):
        g = path_graph(4)
        kern = g.kernel()
        row = kern.bfs_row(0)
        g.set_edge_weight(1, 2, 9.0)
        g.set_vertex_weight(0, 2.0)
        assert g.kernel() is kern
        assert kern.bfs_row(0) == row

    def test_fresh_kernel_after_mutation_works(self):
        g = path_graph(4)
        kern = g.kernel()
        g.add_edge(0, 3)
        with pytest.raises(GraphError):
            kern.bfs_row(0)
        fresh = g.kernel()
        assert fresh is not kern
        assert fresh.bfs_row(0) == [0, 1, 2, 1]


class TestCsrSubstrate:
    def test_structure_matches_adjacency(self):
        g = Graph()
        g.add_edge("b", "a")
        g.add_edge("b", "c")
        g.add_edge("a", "c")
        csr = g.csr()
        # labels/indices follow insertion order; rows are sorted
        assert csr.labels == ("b", "a", "c")
        assert csr.index == {"b": 0, "a": 1, "c": 2}
        assert list(csr.indptr) == [0, 2, 4, 6]
        assert [list(csr.row(i)) for i in range(csr.n)] == \
            [[1, 2], [0, 2], [0, 1]]
        assert csr.m == 2 * g.m
        assert [csr.degree(i) for i in range(csr.n)] == [2, 2, 2]
        assert csr.masks() == [0b110, 0b101, 0b011]

    def test_cached_until_structural_mutation(self):
        g = path_graph(5)
        csr = g.csr()
        assert g.csr() is csr
        g.set_edge_weight(0, 1, 3.0)  # weight-only: structure survives
        assert g.csr() is csr
        g.add_edge(0, 4)
        assert g.csr() is not csr

    def test_csr_weights_aligned_and_invalidated(self):
        g = path_graph(3)
        g.set_edge_weight(1, 2, 5.0)
        csr = g.csr()
        w = g.csr_weights()
        assert len(w) == len(csr.indices)
        def weight(u, v):
            i, j = csr.index[u], csr.index[v]
            for k in range(csr.indptr[i], csr.indptr[i + 1]):
                if csr.indices[k] == j:
                    return w[k]
            raise AssertionError("edge not in CSR")
        assert weight(0, 1) == weight(1, 0) == 1.0
        assert weight(1, 2) == weight(2, 1) == 5.0
        assert g.csr_weights() is w
        g.set_edge_weight(0, 1, 2.0)
        w2 = g.csr_weights()
        assert w2 is not w
        assert g.csr() is csr  # structure cache untouched
        i01 = csr.indptr[0]  # vertex 0's only neighbour is 1
        assert w2[i01] == 2.0

    def test_unweighted_fast_path(self):
        g = cycle_graph(6)
        w = g.csr_weights()
        assert list(w) == [1.0] * (2 * g.m)

    def test_copy_shares_csr_snapshot(self):
        g = path_graph(4)
        csr = g.csr()
        w = g.csr_weights()
        h = g.copy()
        assert h.csr() is csr
        assert h.csr_weights() is w
        h.add_edge(0, 3)
        assert h.csr() is not csr
        assert g.csr() is csr  # original untouched

    def test_digraph_csr_is_successor_based(self):
        d = DiGraph()
        d.add_edge("a", "b")
        d.add_edge("a", "c")
        d.add_edge("c", "a")
        csr = d.csr()
        assert csr.labels == ("a", "b", "c")
        assert [list(csr.row(i)) for i in range(csr.n)] == \
            [[1, 2], [], [0]]
        assert d.csr() is csr
        d.add_edge("b", "c")
        assert d.csr() is not csr
