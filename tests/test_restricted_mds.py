"""Section 4.5 restricted MDS tests (Theorem 4.8, Lemma 4.7) and the
local-aggregate machinery."""

import pytest

from repro.cc.functions import (
    disjointness,
    random_disjoint_pair,
    random_input_pairs,
    random_intersecting_pair,
)
from repro.congest.local_aggregate import (
    GreedyMdsSpec,
    run_local_aggregate,
    simulate_shared_two_party,
)
from repro.core.kmds import A_SPECIAL, B_SPECIAL, R_SPECIAL, scomp, svert
from repro.core.restricted_mds import RestrictedMdsConstruction, element
from repro.covering.designs import build_covering_collection
from repro.graphs import complete_graph, cycle_graph, random_graph
from repro.solvers import is_dominating_set
from tests.conftest import connected_random_graph


@pytest.fixture(scope="module")
def collection():
    return build_covering_collection(universe_size=16, T=6, r=2, seed=0)


@pytest.fixture(scope="module")
def rm(collection):
    return RestrictedMdsConstruction(collection)


class TestConstruction:
    def test_single_element_vertices(self, rm, rng):
        g = rm.build(*random_input_pairs(rm.k_bits, 1, rng)[0])
        for j in range(rm.ell):
            assert element(j) in g
        # each element adjacent to the sets containing it on both sides
        cc = rm.collection
        for i in range(cc.T):
            for j in range(rm.ell):
                in_set = j in cc.sets[i]
                assert g.has_edge(svert(i), element(j)) == in_set
                assert g.has_edge(scomp(i), element(j)) == (not in_set)

    def test_shared_vertices_disjoint_from_sides(self, rm):
        assert not rm.shared_vertices() & rm.alice_vertices()

    def test_lemma_47_gap(self, rm, rng):
        x, y = random_intersecting_pair(rm.k_bits, rng)
        assert rm.optimum(rm.build(x, y)) == 2
        x, y = random_disjoint_pair(rm.k_bits, rng)
        assert rm.optimum(rm.build(x, y)) > rm.collection.r

    def test_iff_sweep(self, rm, rng):
        for x, y in random_input_pairs(rm.k_bits, 6, rng):
            assert rm.predicate(rm.build(x, y)) == (not disjointness(x, y))


class TestLocalAggregateFramework:
    def test_greedy_full_run_dominates(self, rng):
        g = connected_random_graph(10, 0.35, rng)
        run = run_local_aggregate(g, GreedyMdsSpec())
        ds = [v for v, b in run.outputs.items() if b]
        assert is_dominating_set(g, ds)

    def test_greedy_on_clique(self):
        run = run_local_aggregate(complete_graph(6), GreedyMdsSpec())
        assert sum(run.outputs.values()) == 1

    def test_aggregate_is_splitting(self):
        """Definition 4.1: f(X) = φ(f(X1), f(X2)) for the (max, +, +)
        monoid."""
        spec = GreedyMdsSpec()
        msgs = [((3, 1), 1, 1), ((5, 0), 0, 1), ((2, 2), 1, 1)]
        whole = spec.identity
        for m in msgs:
            whole = spec.combine(whole, m)
        left = spec.combine(spec.identity, msgs[0])
        right = spec.identity
        for m in msgs[1:]:
            right = spec.combine(right, m)
        assert spec.combine(left, right) == whole

    def test_two_party_matches_full_run(self, rng):
        g = connected_random_graph(9, 0.4, rng)
        vs = g.vertices()
        full = run_local_aggregate(g, GreedyMdsSpec())
        sim = simulate_shared_two_party(g, set(vs[:4]), set(vs[4:6]),
                                        GreedyMdsSpec())
        assert sim.outputs == full.outputs
        assert sim.rounds == full.rounds

    def test_shared_bits_counted(self, rm, rng):
        x, y = random_input_pairs(rm.k_bits, 2, rng)[0]
        run = rm.simulate_greedy_two_party(x, y)
        assert run.shared_bits > 0
        ds = [v for v, b in run.outputs.items() if b]
        assert is_dominating_set(rm.build(x, y), ds)

    def test_theorem_48_bit_rate(self, rm, rng):
        """Per round, the shared exchange is O(ℓ · log n) bits."""
        import math

        x, y = random_input_pairs(rm.k_bits, 2, rng)[1]
        run = rm.simulate_greedy_two_party(x, y)
        g = rm.build(x, y)
        logn = math.log2(g.n)
        per_round = run.shared_bits / run.rounds
        # two partial aggregates of O(log n) bits per shared vertex; the
        # GreedyMdsSpec keys carry a 16-bit fixed-point scale on top
        assert per_round <= 2 * rm.ell * (16 + 4 * logn)

    def test_greedy_solution_quality(self, rm, rng):
        """The greedy local-aggregate algorithm lands within O(log n) of
        the optimum on intersecting instances."""
        x, y = random_intersecting_pair(rm.k_bits, rng)
        run = rm.simulate_greedy_two_party(x, y)
        g = rm.build(x, y)
        weight = sum(g.vertex_weight(v)
                     for v, b in run.outputs.items() if b)
        assert weight <= 6 * rm.collection.universe_size  # sanity bound
