"""Shared fixtures and brute-force reference implementations."""

from __future__ import annotations

import random
from itertools import combinations
from typing import List, Optional, Sequence, Set, Tuple

import pytest

from repro.graphs import Graph, Vertex
from repro.solvers import is_dominating_set, is_independent_set, is_vertex_cover


@pytest.fixture
def rng() -> random.Random:
    return random.Random(0xDEADBEEF)


def brute_force_mis_size(graph: Graph, weighted: bool = False) -> float:
    """Reference maximum (weight) independent set by full enumeration."""
    best = 0.0
    vs = graph.vertices()
    for r in range(len(vs) + 1):
        for subset in combinations(vs, r):
            if is_independent_set(graph, subset):
                value = (sum(graph.vertex_weight(v) for v in subset)
                         if weighted else float(r))
                best = max(best, value)
    return best


def brute_force_mds_size(graph: Graph, k: int = 1) -> int:
    vs = graph.vertices()
    for r in range(0, len(vs) + 1):
        for subset in combinations(vs, r):
            if is_dominating_set(graph, subset, k=k):
                return r
    raise AssertionError("unreachable")


def brute_force_mds_weight(graph: Graph, k: int = 1) -> float:
    vs = graph.vertices()
    best = float("inf")
    for r in range(0, len(vs) + 1):
        for subset in combinations(vs, r):
            if is_dominating_set(graph, subset, k=k):
                best = min(best, sum(graph.vertex_weight(v) for v in subset))
    return best


def brute_force_mvc_size(graph: Graph) -> int:
    vs = graph.vertices()
    for r in range(0, len(vs) + 1):
        for subset in combinations(vs, r):
            if is_vertex_cover(graph, subset):
                return r
    raise AssertionError("unreachable")


def brute_force_max_cut(graph: Graph) -> float:
    from repro.solvers import cut_weight

    vs = graph.vertices()
    best = 0.0
    for r in range(len(vs) + 1):
        for subset in combinations(vs, r):
            best = max(best, cut_weight(graph, subset))
    return best


def connected_random_graph(n: int, p: float, rng: random.Random) -> Graph:
    from repro.graphs import random_graph

    g = random_graph(n, p, rng)
    while not g.is_connected():
        g = random_graph(n, p, rng)
    return g
