"""Section 4.1 code-gadget family tests (Theorems 4.1-4.3, Lemma 4.1)."""

import pytest

from repro.cc.functions import (
    disjointness,
    random_disjoint_pair,
    random_input_pairs,
    random_intersecting_pair,
)
from repro.core.approx_maxis import (
    LinearApproxMaxISFamily,
    UnweightedApproxMaxISFamily,
    WeightedApproxMaxISFamily,
    choose_code_params,
    gadget,
    row,
)
from repro.core.family import validate_family, verify_iff
from repro.solvers import max_independent_set, max_independent_set_weight


@pytest.fixture(scope="module")
def fam():
    return WeightedApproxMaxISFamily(2)


class TestParameters:
    def test_q_prime_and_large_enough(self):
        for k in (2, 4, 8):
            ell, t, q = choose_code_params(k)
            from repro.codes.gf import is_prime

            assert is_prime(q)
            assert q == ell + t + 1
            assert q ** t >= k

    def test_code_distance(self, fam):
        from repro.codes import hamming_distance

        words = fam.codewords
        for i in range(len(words)):
            for j in range(i + 1, len(words)):
                assert hamming_distance(words[i], words[j]) >= fam.ell


class TestWeightedConstruction:
    def test_row_weights(self, fam):
        g = fam.fixed_graph()
        assert g.vertex_weight(row("A1", 0)) == fam.ell
        assert g.vertex_weight(gadget("A1", 0, 0)) == 1

    def test_gadget_columns_are_cliques(self, fam):
        g = fam.fixed_graph()
        assert g.has_edge(gadget("A1", 0, 0), gadget("A1", 0, 1))

    def test_bipartite_minus_matching(self, fam):
        g = fam.fixed_graph()
        assert g.has_edge(gadget("A1", 0, 0), gadget("B1", 0, 1))
        assert not g.has_edge(gadget("A1", 0, 0), gadget("B1", 0, 0))

    def test_row_adjacent_to_non_codeword(self, fam):
        g = fam.fixed_graph()
        word = fam.codewords[0]
        for j in range(fam.n_coords):
            for alpha in range(fam.q):
                assert g.has_edge(row("A1", 0), gadget("A1", j, alpha)) == \
                    (alpha != word[j])

    def test_definition_1_1(self, fam):
        validate_family(fam)

    def test_gap_ratio_approaches_seven_eighths(self):
        r2 = WeightedApproxMaxISFamily(2).gap_ratio()
        r16 = WeightedApproxMaxISFamily(16).gap_ratio()
        assert r2 > 7 / 8
        assert abs(r16 - 7 / 8) < abs(r2 - 7 / 8)


class TestLemma41:
    def test_iff_sweep(self, fam, rng):
        report = verify_iff(fam, random_input_pairs(4, 6, rng), negate=True)
        assert report.true_instances and report.false_instances

    def test_structured_matches_generic(self, fam, rng):
        for x, y in random_input_pairs(4, 4, rng):
            g = fam.build(x, y)
            assert fam.structured_max_weight(g) == \
                max_independent_set_weight(g, weighted=True)

    def test_gap_values_exact(self, fam, rng):
        x, y = random_intersecting_pair(4, rng)
        assert fam.structured_max_weight(fam.build(x, y)) == fam.alpha_yes
        x, y = random_disjoint_pair(4, rng)
        assert fam.structured_max_weight(fam.build(x, y)) <= fam.alpha_no

    def test_alpha_no_ceiling_attained(self, fam):
        """A disjoint pair with a 1-entry hits exactly 7ℓ + 4t (the
        "sacrifice one row" optimum of Lemma 4.1)."""
        x = [0] * fam.k_bits
        x[0] = 1
        y = tuple([0] * fam.k_bits)
        assert fam.structured_max_weight(
            fam.build(tuple(x), y)) == fam.alpha_no

    def test_dense_zero_inputs_fall_below_ceiling(self, fam):
        zeros = tuple([0] * fam.k_bits)
        value = fam.structured_max_weight(fam.build(zeros, zeros))
        assert value < fam.alpha_no

    def test_k4_gap(self, rng):
        fam4 = WeightedApproxMaxISFamily(4)
        x, y = random_intersecting_pair(16, rng)
        assert fam4.structured_max_weight(fam4.build(x, y)) == fam4.alpha_yes
        x, y = random_disjoint_pair(16, rng)
        assert fam4.structured_max_weight(fam4.build(x, y)) <= fam4.alpha_no


class TestUnweightedVariant:
    def test_batches_are_twins(self, rng):
        fam = UnweightedApproxMaxISFamily(2)
        g = fam.build(*random_input_pairs(4, 1, rng)[0])
        from repro.core.approx_maxis import batch_row

        b0 = batch_row("A1", 0, 0)
        for xi in range(1, fam.ell):
            assert g.neighbors(b0) - {batch_row("A1", 0, xi)} == \
                g.neighbors(batch_row("A1", 0, xi)) - {b0}

    def test_iff_and_generic_crosscheck(self, rng):
        fam = UnweightedApproxMaxISFamily(2)
        validate_family(fam)
        pairs = random_input_pairs(4, 4, rng)
        report = verify_iff(fam, pairs, negate=True)
        for x, y in pairs[:2]:
            g = fam.build(x, y)
            assert len(max_independent_set(g)) == \
                fam.structured_max_weight(g)

    def test_all_weights_unit(self, rng):
        fam = UnweightedApproxMaxISFamily(2)
        g = fam.build(*random_input_pairs(4, 1, rng)[0])
        assert all(g.vertex_weight(v) == 1 for v in g.vertices())


class TestLinearVariant:
    @pytest.fixture(scope="class")
    def lfam(self):
        return LinearApproxMaxISFamily(4)

    def test_k_bits_is_k(self, lfam):
        assert lfam.k_bits == 4  # reduces from DISJ_k, not DISJ_{k²}

    def test_definition_1_1(self, lfam):
        validate_family(lfam)

    def test_iff_sweep(self, lfam, rng):
        report = verify_iff(lfam, random_input_pairs(4, 6, rng), negate=True)
        assert report.true_instances and report.false_instances

    def test_structured_matches_generic(self, lfam, rng):
        for x, y in random_input_pairs(4, 3, rng):
            g = lfam.build(x, y)
            assert lfam.structured_max_weight(g) == \
                max_independent_set_weight(g, weighted=True)

    def test_gap_ratio_five_sixths(self, lfam):
        assert lfam.gap_ratio() > 5 / 6
        assert lfam.alpha_yes - lfam.alpha_no == lfam.ell
