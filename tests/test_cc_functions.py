"""Coverage for the communication-function toolbox (repro.cc.functions)
and the message size-accounting edge cases."""

import random

import pytest

from repro.cc.functions import (
    DISJ,
    EQ,
    all_inputs,
    disjointness,
    equality,
    gap_disjointness,
    intersection_size,
    random_disjoint_pair,
    random_input_pairs,
    random_intersecting_pair,
)
from repro.congest import message_bits


class TestGapDisjointness:
    def test_disjoint_is_true(self):
        assert gap_disjointness((1, 0, 0), (0, 1, 0), gap=2) is True

    def test_large_intersection_is_false(self):
        assert gap_disjointness((1, 1, 0), (1, 1, 0), gap=2) is False

    def test_intersection_at_gap_is_legal(self):
        # promise excludes the open interval (0, gap); size == gap is fine
        assert gap_disjointness((1, 1, 0), (1, 1, 0), gap=2) is False

    def test_promise_violation_raises(self):
        with pytest.raises(ValueError, match="promise violation"):
            gap_disjointness((1, 1, 0, 0), (1, 0, 0, 0), gap=2)

    def test_promise_violation_message_names_the_size(self):
        with pytest.raises(ValueError, match=r"intersection 2 in \(0, 3\)"):
            gap_disjointness((1, 1, 0), (1, 1, 0), gap=3)

    def test_gap_one_never_violates(self):
        # with gap = 1 the interval (0, 1) is empty: plain DISJ
        for x in all_inputs(3):
            for y in all_inputs(3):
                assert gap_disjointness(x, y, 1) == disjointness(x, y)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            gap_disjointness((1, 0), (1,), gap=2)


class TestRandomInputPairs:
    def test_balanced_between_true_and_false(self):
        rng = random.Random(0)
        pairs = random_input_pairs(12, 40, rng)
        verdicts = [disjointness(x, y) for x, y in pairs]
        assert verdicts.count(True) == 20
        assert verdicts.count(False) == 20

    def test_deterministic_under_fixed_seed(self):
        a = random_input_pairs(9, 10, random.Random(7))
        b = random_input_pairs(9, 10, random.Random(7))
        assert a == b

    def test_disjoint_pair_is_disjoint(self):
        rng = random.Random(3)
        for __ in range(50):
            x, y = random_disjoint_pair(8, rng)
            assert disjointness(x, y)
            assert len(x) == len(y) == 8

    def test_intersecting_pair_intersects(self):
        rng = random.Random(4)
        for __ in range(50):
            x, y = random_intersecting_pair(8, rng)
            assert not disjointness(x, y)
            assert intersection_size(x, y) >= 1


class TestCCFunctionMetadata:
    def test_disj_evaluates(self):
        assert DISJ((0, 1), (1, 0)) is True
        assert DISJ((1, 1), (1, 0)) is False

    def test_eq_evaluates(self):
        assert EQ((0, 1), (0, 1)) is True
        assert EQ((0, 1), (1, 1)) is False

    def test_complexities_are_positive(self):
        for fn in (DISJ, EQ):
            for K in (2, 16, 1024):
                assert fn.cc(K) > 0
                assert fn.ccr(K) > 0
                assert fn.ccn(K) > 0
                assert fn.ccn_complement(K) > 0

    def test_equality_length_mismatch(self):
        with pytest.raises(ValueError):
            equality((1, 0), (1,))


class TestMessageBitsEdgeCases:
    def test_negative_int_counts_magnitude_plus_sign(self):
        # two's-complement width: bit_length of the magnitude plus a sign bit
        assert message_bits(-1) == 2
        assert message_bits(-5) == 4
        assert message_bits(-(2 ** 31)) == 33

    def test_huge_int(self):
        assert message_bits(2 ** 100) == 102

    def test_empty_containers_are_free(self):
        # framing is per item, so empty containers cost nothing
        assert message_bits(()) == 0
        assert message_bits([]) == 0
        assert message_bits({}) == 0
        assert message_bits(set()) == 0

    def test_nested_containers_sum_with_framing(self):
        inner = (1, 2)  # ints cost bit_length + 1: (2 + 2) + (3 + 2) = 9
        assert message_bits(inner) == 9
        assert message_bits((inner,)) == 9 + 2
        assert message_bits({0: inner}) == 1 + 9 + 4

    def test_set_and_frozenset(self):
        assert message_bits({3}) == message_bits(frozenset({3})) == 5

    def test_bytes_per_byte(self):
        assert message_bits(b"ab") == 16
        assert message_bits(bytearray(b"abc")) == 24

    def test_unsupported_type_raises(self):
        with pytest.raises(TypeError, match="unsupported message type"):
            message_bits(object())

    def test_unsupported_type_nested_raises(self):
        with pytest.raises(TypeError, match="unsupported message type"):
            message_bits((1, object()))
