"""The differential harness must catch bugs — proven by planting one.

Covers the four layers of ``repro.check`` (references, invariants,
fuzzing/shrinking, CONGEST agreement) plus the end-to-end property the
subsystem exists for: a mutated solver is detected and the failure is
shrunk to a minimal reproducer.
"""

import json
import random

import pytest

import repro.solvers as solvers
from repro.check import CHECKS, generate_cases, make_case, run_check, shrink_graph
from repro.check.congest_check import check_congest_mds
from repro.check.fuzz import FAMILIES
from repro.check.invariants import disjoint_union, inv_alpha_tau, relabeled
from repro.check.reference import (
    ref_has_dominating_set_of_size,
    ref_independence_number,
    ref_max_cut_value,
    ref_max_flow_value,
    ref_max_matching_size,
    ref_min_dominating_set_size,
    ref_min_vertex_cover_size,
    ref_steiner_tree_cost,
)
from repro.cli import main
from repro.graphs import Graph, cycle_graph, path_graph


class TestFuzz:
    def test_case_regeneration_is_exact(self):
        for family in FAMILIES:
            a = make_case(3, family, 1)
            b = make_case(3, family, 1)
            assert a.name == b.name
            assert a.terminals == b.terminals
            assert a.graph.content_hash() == b.graph.content_hash()

    def test_different_indices_differ(self):
        a = make_case(0, "er", 0)
        b = make_case(0, "er", 1)
        assert (a.graph.content_hash() != b.graph.content_hash()
                or a.terminals != b.terminals)

    def test_round_robin_covers_families(self):
        cases = generate_cases(0, len(FAMILIES) * 2)
        assert {c.family for c in cases} == set(FAMILIES)

    def test_paper_case_has_ground_truth(self):
        c = make_case(0, "paper", 0)
        assert c.meta["disjoint"] in (True, False)
        assert c.meta["target_size"] == 6  # 4·log k + 2 at k = 2
        assert c.graph.n == 20

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError):
            generate_cases(0, 4, family="nope")


class TestReference:
    """The references must be right on graphs with known answers."""

    def test_cycle5(self):
        g = cycle_graph(5)
        assert ref_independence_number(g) == 2
        assert ref_min_vertex_cover_size(g) == 3
        assert ref_max_cut_value(g) == 4.0
        assert ref_max_matching_size(g) == 2
        assert ref_min_dominating_set_size(g) == 2

    def test_path4(self):
        g = path_graph(4)
        assert ref_independence_number(g) == 2
        assert ref_max_matching_size(g) == 2
        assert ref_max_flow_value(g, 0, 3) == 1.0
        assert ref_steiner_tree_cost(g, [0, 3]) == 3.0

    def test_bounded_domination_decision(self):
        g = cycle_graph(6)
        assert ref_has_dominating_set_of_size(g, 2)
        assert not ref_has_dominating_set_of_size(g, 1)


class TestInvariantHelpers:
    def test_relabel_preserves_structure(self):
        g = cycle_graph(6)
        perm, mapping = relabeled(g, random.Random(0))
        assert perm.n == g.n and perm.m == g.m
        assert set(mapping) == set(g.vertices())

    def test_disjoint_union_counts(self):
        u = disjoint_union(cycle_graph(3), path_graph(2))
        assert u.n == 5 and u.m == 4

    def test_alpha_tau_holds_on_cycle(self):
        assert inv_alpha_tau(cycle_graph(7), random.Random(0)) is None


class TestShrink:
    def test_shrinks_to_single_edge(self):
        g = cycle_graph(8)

        def failing(candidate):
            return candidate.has_edge(0, 1)

        small = shrink_graph(g, failing)
        assert small.has_edge(0, 1)
        assert small.n == 2 and small.m == 1

    def test_protected_vertices_survive(self):
        g = path_graph(6)
        small = shrink_graph(g, lambda c: True, protected=(0, 5))
        assert 0 in small and 5 in small
        assert small.m == 0

    def test_weights_reset(self):
        g = path_graph(3)
        g.set_edge_weight(0, 1, 9.0)
        g.set_vertex_weight(2, 5.0)
        small = shrink_graph(g, lambda c: True)
        for u, v in small.edges():
            assert small.edge_weight(u, v) == 1.0
        for v in small.vertices():
            assert small.vertex_weight(v) == 1.0


class TestCongestCheck:
    def test_agrees_on_cycle(self):
        assert check_congest_mds(cycle_graph(6)) is None

    def test_detects_wrong_exact_solver(self, monkeypatch):
        real = solvers.min_dominating_set
        calls = {"n": 0}

        def mutant(g, **kw):
            calls["n"] += 1
            out = real(g, **kw)
            # first call is the centralized expectation; inflate it
            return out + [next(iter(g.vertices()))] if calls["n"] == 1 else out

        monkeypatch.setattr(solvers, "min_dominating_set", mutant)
        assert check_congest_mds(cycle_graph(6)) is not None


class TestRunCheck:
    def test_clean_on_seed_zero(self):
        report = run_check(seed=0, cases=10)
        assert report.ok
        assert report.cases_run == 10
        assert report.checks_run > 50
        assert "all checks passed" in report.summary()

    def test_jobs_match_serial(self):
        serial = run_check(seed=2, cases=8, do_shrink=False)
        fanned = run_check(seed=2, cases=8, do_shrink=False, jobs=2)
        assert serial.ok and fanned.ok
        assert serial.checks_run == fanned.checks_run
        assert serial.check_counts == fanned.check_counts

    def test_check_counts_sum_to_checks_run(self):
        report = run_check(seed=1, cases=4, do_shrink=False)
        assert report.check_counts
        assert sum(report.check_counts.values()) == report.checks_run
        summary = report.to_json()
        assert summary["check_counts"] == report.check_counts

    def test_trace_dir_captures_congest_runs(self, tmp_path):
        out = tmp_path / "traces"
        report = run_check(seed=0, cases=3, family="er", do_shrink=False,
                           trace_dir=str(out))
        assert report.ok
        traces = sorted(out.glob("check-seed0-*.rtb"))
        assert traces, "check --trace-dir produced no binary traces"
        from repro.obs import iter_trace
        kinds = {e.kind for path in traces for e in iter_trace(path)}
        assert {"run_start", "run_end"} <= kinds

    def test_trace_dir_parallel_uses_chunk_prefixes(self, tmp_path):
        out = tmp_path / "traces"
        report = run_check(seed=0, cases=4, family="er", do_shrink=False,
                           jobs=2, trace_dir=str(out))
        assert report.ok
        names = sorted(p.name for p in out.glob("*.rtb"))
        assert names
        assert all(n.startswith("check-seed0-w") for n in names)

    def test_trace_dir_jsonl_format(self, tmp_path):
        out = tmp_path / "traces"
        run_check(seed=0, cases=2, family="er", do_shrink=False,
                  trace_dir=str(out), trace_format="jsonl")
        assert sorted(out.glob("*.jsonl")), "jsonl trace_format ignored"
        assert not sorted(out.glob("*.rtb"))

    def test_rejects_bad_jobs(self):
        with pytest.raises(ValueError):
            run_check(seed=0, cases=1, jobs=0)

    def test_planted_mutation_is_caught_and_shrunk(self, monkeypatch):
        """The acceptance property: an off-by-one planted in a production
        solver is detected and minimised to a tiny reproducer."""
        real = solvers.independence_number

        def mutant(graph, **kw):
            return real(graph, **kw) + 1

        monkeypatch.setattr(solvers, "independence_number", mutant)
        report = run_check(seed=0, cases=4, family="er")
        assert not report.ok
        hit_checks = {f.check for f in report.failures}
        assert "ref:independence-number" in hit_checks
        assert "inv:alpha-tau" in hit_checks  # α + τ != n under the mutant
        shrunk = [f.shrunk for f in report.failures if f.shrunk is not None]
        assert shrunk, "failures carried no reproducers"
        smallest = min(s["graph"]["n"] for s in shrunk)
        assert smallest <= 2, "shrinking left a large reproducer"
        assert all(f.repro.startswith("python -m repro check")
                   for f in report.failures)

    def test_planted_maxcut_mutation_is_caught(self, monkeypatch):
        real = solvers.max_cut_value

        def mutant(graph, **kw):
            v = real(graph, **kw)
            return v - 1 if v >= 1 else v

        monkeypatch.setattr(solvers, "max_cut_value", mutant)
        report = run_check(seed=0, cases=4, family="er", do_shrink=False)
        assert not report.ok
        assert any(f.check == "ref:maxcut" for f in report.failures)

    def test_exception_in_solver_becomes_failure(self, monkeypatch):
        def boom(graph, **kw):
            raise RuntimeError("planted crash")

        monkeypatch.setattr(solvers, "max_matching_size", boom)
        report = run_check(seed=0, cases=3, family="er", do_shrink=False)
        assert not report.ok
        assert any("planted crash" in f.detail for f in report.failures)

    def test_report_dir_artifacts(self, tmp_path, monkeypatch):
        real = solvers.independence_number
        monkeypatch.setattr(solvers, "independence_number",
                            lambda g, **kw: real(g, **kw) + 1)
        out = tmp_path / "reports"
        report = run_check(seed=0, cases=2, family="er", do_shrink=False,
                           report_dir=str(out))
        assert not report.ok
        summary = json.loads((out / "check-report.json").read_text())
        assert summary["ok"] is False
        assert len(summary["failures"]) == len(report.failures)
        per_failure = sorted(out.glob("failure-*.json"))
        assert len(per_failure) == len(report.failures)
        first = json.loads(per_failure[0].read_text())
        assert first["check"] == report.failures[0].check


class TestCheckRegistry:
    def test_names_are_unique(self):
        names = [c.name for c in CHECKS]
        assert len(names) == len(set(names))

    def test_every_kind_present(self):
        kinds = {c.kind for c in CHECKS}
        assert kinds == {"reference", "invariant", "paper", "congest",
                         "family"}

    def test_paper_checks_not_shrinkable(self):
        for c in CHECKS:
            if c.kind in ("paper", "congest"):
                assert not c.shrinkable


class TestCheckCLI:
    def test_clean_run_prints_summary(self, capsys):
        main(["check", "--seed", "0", "--cases", "5"])
        out = capsys.readouterr().out
        assert "repro check: seed=0 cases=5" in out
        assert "all checks passed" in out

    def test_failing_run_exits_nonzero(self, capsys, monkeypatch):
        real = solvers.independence_number
        monkeypatch.setattr(solvers, "independence_number",
                            lambda g, **kw: real(g, **kw) + 1)
        with pytest.raises(SystemExit):
            main(["check", "--seed", "0", "--cases", "2", "--family", "er",
                  "--no-shrink"])
        assert "FAIL" in capsys.readouterr().out
