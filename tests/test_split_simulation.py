"""Lemma 2.2's distributed simulation (the 2×-round split host) and the
item-1 negation PLS."""

import random

import pytest

from repro.congest.algorithms.basic import BfsFromRoot, FloodMinId
from repro.congest.algorithms.split_simulation import run_split_simulation
from repro.congest.model import CongestSimulator
from repro.core.reductions import directed_to_undirected_hc
from repro.graphs import DiGraph
from repro.pls import ConnectedSpanningSubgraphPls, NotConnectedSpanningSubgraphPls
from repro.pls.scheme import (
    PlsInstance,
    check_completeness,
    check_soundness_samples,
    edge_key,
)
from repro.graphs import cycle_graph


def weakly_connected_digraph(n, p, rng):
    while True:
        dg = DiGraph()
        for v in range(n):
            dg.add_vertex(v)
        for u in range(n):
            for v in range(n):
                if u != v and rng.random() < p:
                    dg.add_edge(u, v)
        if dg.to_undirected().is_connected():
            return dg


class TestSplitSimulation:
    def test_leader_election_agrees(self, rng):
        dg = weakly_connected_digraph(6, 0.4, rng)
        outputs, sim = run_split_simulation(dg, FloodMinId)
        gprime = directed_to_undirected_hc(dg)
        direct = CongestSimulator(gprime)
        direct_out = direct.run(FloodMinId)
        want = set(direct_out.values())
        got = {o for out in outputs.values() for o in out.values()}
        assert got == want

    def test_two_x_round_overhead(self, rng):
        dg = weakly_connected_digraph(6, 0.4, rng)
        __, sim = run_split_simulation(dg, FloodMinId)
        gprime = directed_to_undirected_hc(dg)
        direct = CongestSimulator(gprime)
        direct.run(FloodMinId)
        assert sim.rounds <= 2 * direct.rounds + 4

    def test_bfs_depths_transfer(self, rng):
        dg = weakly_connected_digraph(5, 0.5, rng)
        gprime = directed_to_undirected_hc(dg)
        probe = CongestSimulator(gprime)
        root_uid = 0

        outputs, sim = run_split_simulation(
            dg, lambda: _BfsWithInput(root_uid))
        direct = CongestSimulator(gprime)
        direct_out = direct.run(
            BfsFromRoot, inputs={v: root_uid for v in gprime.vertices()})
        for v, out in outputs.items():
            for tag in ("in", "mid", "out"):
                assert out[tag][1] == direct_out[(tag, v)][1]

    def test_every_copy_reports(self, rng):
        dg = weakly_connected_digraph(5, 0.4, rng)
        outputs, __ = run_split_simulation(dg, FloodMinId)
        for out in outputs.values():
            assert set(out) == {"in", "mid", "out"}


class _BfsWithInput(BfsFromRoot):
    """BfsFromRoot reads the root from ctx.input; the split host passes
    wiring there, so bake the root in instead."""

    def __init__(self, root_uid: int) -> None:
        super().__init__()
        self.root_uid = root_uid

    def on_start(self, ctx):
        ctx.input = self.root_uid
        return super().on_start(ctx)

    def on_round(self, ctx, messages):
        ctx.input = self.root_uid
        return super().on_round(ctx, messages)


class TestNotConnectedSpanningSubgraphPls:
    def test_isolated_vertex_case(self, rng):
        g = cycle_graph(6)
        inst = PlsInstance(graph=g, subgraph=frozenset(
            [edge_key(0, 1), edge_key(1, 2)]))
        check_completeness(NotConnectedSpanningSubgraphPls(), inst)

    def test_disconnected_case(self, rng):
        g = cycle_graph(6)
        inst = PlsInstance(graph=g, subgraph=frozenset(
            [edge_key(0, 1), edge_key(1, 2), edge_key(3, 4), edge_key(4, 5)]))
        check_completeness(NotConnectedSpanningSubgraphPls(), inst)

    def test_soundness_on_spanning_connected(self, rng):
        g = cycle_graph(6)
        full = PlsInstance(graph=g, subgraph=frozenset(
            edge_key(u, v) for u, v in g.edges()))
        donors = [
            PlsInstance(graph=g, subgraph=frozenset(
                [edge_key(0, 1), edge_key(1, 2)])),
            PlsInstance(graph=g, subgraph=frozenset(
                [edge_key(0, 1), edge_key(1, 2), edge_key(3, 4),
                 edge_key(4, 5)])),
        ]
        check_soundness_samples(NotConnectedSpanningSubgraphPls(), full,
                                rng, donor_instances=donors)
        check_completeness(ConnectedSpanningSubgraphPls(), full)
