"""Exact dominating-set / set-cover solver tests."""

import pytest

from repro.graphs import Graph, complete_graph, cycle_graph, path_graph, random_graph
from repro.solvers import (
    has_dominating_set_of_size,
    is_dominating_set,
    min_dominating_set,
    min_dominating_set_weight,
    min_k_dominating_set_weight,
    min_set_cover,
)
from repro.solvers.dominating import constrained_min_dominating_set
from tests.conftest import brute_force_mds_size, brute_force_mds_weight


class TestIsDominatingSet:
    def test_all_vertices(self):
        g = cycle_graph(5)
        assert is_dominating_set(g, g.vertices())

    def test_empty_fails_on_nonempty_graph(self):
        assert not is_dominating_set(cycle_graph(4), [])

    def test_center_of_star(self):
        g = Graph()
        for leaf in range(6):
            g.add_edge("c", leaf)
        assert is_dominating_set(g, ["c"])
        assert not is_dominating_set(g, [0])

    def test_distance_two(self):
        g = path_graph(5)
        assert is_dominating_set(g, [2], k=2)
        assert not is_dominating_set(g, [2], k=1)


class TestMinDominatingSet:
    def test_cycle_values(self):
        for n, expected in ((3, 1), (4, 2), (6, 2), (7, 3), (9, 3)):
            assert len(min_dominating_set(cycle_graph(n))) == expected

    def test_complete_graph(self):
        assert len(min_dominating_set(complete_graph(7))) == 1

    def test_matches_brute_force(self, rng):
        for __ in range(10):
            g = random_graph(8, 0.35, rng)
            assert len(min_dominating_set(g)) == brute_force_mds_size(g)

    def test_result_dominates(self, rng):
        for __ in range(8):
            g = random_graph(9, 0.3, rng)
            assert is_dominating_set(g, min_dominating_set(g))

    def test_decision_version(self):
        g = cycle_graph(9)
        assert has_dominating_set_of_size(g, 3)
        assert not has_dominating_set_of_size(g, 2)

    def test_weighted_matches_brute_force(self, rng):
        for __ in range(6):
            g = random_graph(7, 0.4, rng)
            for v in g.vertices():
                g.set_vertex_weight(v, rng.randint(1, 6))
            assert min_dominating_set_weight(g) == brute_force_mds_weight(g)

    def test_weighted_prefers_cheap(self):
        g = Graph()
        for leaf in range(4):
            g.add_edge("hub", leaf)
            g.add_edge("cheap_hub", leaf)
        g.add_edge("hub", "cheap_hub")
        g.set_vertex_weight("hub", 10)
        g.set_vertex_weight("cheap_hub", 1)
        for leaf in range(4):
            g.set_vertex_weight(leaf, 5)
        assert min_dominating_set_weight(g) == 1

    def test_k_domination_matches_brute_force(self, rng):
        for k in (2, 3):
            g = random_graph(8, 0.3, rng)
            for v in g.vertices():
                g.set_vertex_weight(v, rng.randint(1, 4))
            assert min_k_dominating_set_weight(g, k) == \
                brute_force_mds_weight(g, k=k)

    def test_zero_weight_vertices(self):
        g = path_graph(3)
        g.set_vertex_weight(1, 0)
        assert min_dominating_set_weight(g) == 0


class TestConstrainedDomination:
    def test_forced_vertices_included(self):
        g = cycle_graph(6)
        weight, picked = constrained_min_dominating_set(g, forced=[0])
        assert 0 in picked
        assert is_dominating_set(g, picked)

    def test_candidate_restriction(self):
        g = path_graph(5)  # optimal {1, 3}; restrict to even vertices
        weight, picked = constrained_min_dominating_set(
            g, candidates=[0, 2, 4])
        assert set(picked) == {0, 2, 4}

    def test_infeasible_candidates(self):
        g = path_graph(5)
        weight, picked = constrained_min_dominating_set(g, candidates=[0])
        assert picked is None

    def test_budget_exceeded(self):
        g = cycle_graph(9)  # optimum 3
        __, picked = constrained_min_dominating_set(g, budget=2.5)
        assert picked is None

    def test_targets_subset(self):
        g = path_graph(5)
        weight, picked = constrained_min_dominating_set(g, targets=[0])
        assert weight == 1


class TestSetCover:
    def test_simple(self):
        weight, choice = min_set_cover(4, [([0, 1], 1), ([2, 3], 1),
                                           ([0, 1, 2, 3], 3)])
        assert weight == 2
        assert sorted(choice) == [0, 1]

    def test_prefers_cheap_big_set(self):
        weight, choice = min_set_cover(4, [([0], 1), ([1], 1), ([2], 1),
                                           ([3], 1), ([0, 1, 2, 3], 2)])
        assert weight == 2
        assert choice == [4]

    def test_budget(self):
        weight, choice = min_set_cover(3, [([0], 1), ([1], 1), ([2], 1)],
                                       budget=2.5)
        assert choice is None

    def test_element_out_of_range(self):
        with pytest.raises(ValueError):
            min_set_cover(2, [([5], 1)])

    def test_zero_elements(self):
        weight, choice = min_set_cover(0, [])
        assert weight == 0
        assert choice == []
