"""Exact MaxIS / MVC solver tests, including brute-force cross-checks."""

import random

import pytest

from repro.graphs import Graph, complete_graph, cycle_graph, path_graph, random_graph
from repro.solvers import (
    is_independent_set,
    is_vertex_cover,
    max_independent_set,
    max_independent_set_weight,
    min_vertex_cover,
    min_vertex_cover_size,
)
from tests.conftest import brute_force_mis_size, brute_force_mvc_size


class TestIsIndependentSet:
    def test_empty_set(self):
        assert is_independent_set(cycle_graph(4), [])

    def test_single_vertex(self):
        assert is_independent_set(cycle_graph(4), [0])

    def test_adjacent_pair_rejected(self):
        assert not is_independent_set(cycle_graph(4), [0, 1])

    def test_duplicates_rejected(self):
        assert not is_independent_set(cycle_graph(4), [0, 0])

    def test_opposite_pair(self):
        assert is_independent_set(cycle_graph(4), [0, 2])


class TestMaxIndependentSet:
    def test_cycle_values(self):
        for n, expected in ((3, 1), (4, 2), (5, 2), (6, 3), (7, 3)):
            assert len(max_independent_set(cycle_graph(n))) == expected

    def test_complete_graph(self):
        assert len(max_independent_set(complete_graph(6))) == 1

    def test_path(self):
        assert len(max_independent_set(path_graph(7))) == 4

    def test_empty_graph(self):
        assert max_independent_set(Graph()) == []

    def test_edgeless(self):
        g = Graph()
        g.add_vertices(range(5))
        assert len(max_independent_set(g)) == 5

    def test_returned_set_is_independent(self, rng):
        for __ in range(10):
            g = random_graph(9, 0.4, rng)
            mis = max_independent_set(g)
            assert is_independent_set(g, mis)

    def test_matches_brute_force(self, rng):
        for __ in range(12):
            g = random_graph(8, rng.uniform(0.2, 0.7), rng)
            assert len(max_independent_set(g)) == brute_force_mis_size(g)

    def test_weighted_matches_brute_force(self, rng):
        for __ in range(10):
            g = random_graph(7, 0.45, rng)
            for v in g.vertices():
                g.set_vertex_weight(v, rng.randint(1, 8))
            assert max_independent_set_weight(g) == \
                brute_force_mis_size(g, weighted=True)

    def test_weighted_prefers_heavy_vertex(self):
        g = path_graph(3)  # 0-1-2
        g.set_vertex_weight(0, 1)
        g.set_vertex_weight(1, 10)
        g.set_vertex_weight(2, 1)
        assert max_independent_set_weight(g) == 10

    def test_unweighted_ignores_weights(self):
        g = path_graph(3)
        g.set_vertex_weight(1, 100)
        assert max_independent_set_weight(g, weighted=False) == 2

    def test_negative_weight_rejected(self):
        g = path_graph(2)
        g.set_vertex_weight(0, -1)
        with pytest.raises(ValueError):
            max_independent_set(g, weighted=True)

    def test_disconnected_components(self):
        g = Graph()
        g.add_clique(["a", "b", "c"])
        g.add_clique(["x", "y"])
        g.add_vertex("lone")
        assert len(max_independent_set(g)) == 3

    def test_large_clique_union(self):
        g = Graph()
        for block in range(6):
            g.add_clique([(block, i) for i in range(5)])
        assert len(max_independent_set(g)) == 6


class TestMinVertexCover:
    def test_cycle_values(self):
        for n, expected in ((3, 2), (4, 2), (5, 3), (6, 3)):
            assert min_vertex_cover_size(cycle_graph(n)) == expected

    def test_cover_is_valid(self, rng):
        for __ in range(8):
            g = random_graph(9, 0.4, rng)
            assert is_vertex_cover(g, min_vertex_cover(g))

    def test_matches_brute_force(self, rng):
        for __ in range(8):
            g = random_graph(8, 0.5, rng)
            assert min_vertex_cover_size(g) == brute_force_mvc_size(g)

    def test_complement_relation(self, rng):
        g = random_graph(9, 0.4, rng)
        assert min_vertex_cover_size(g) + \
            len(max_independent_set(g)) == g.n

    def test_star(self):
        g = Graph()
        for leaf in range(5):
            g.add_edge("center", leaf)
        assert min_vertex_cover_size(g) == 1
