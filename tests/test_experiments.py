"""Experiment registry tests: every registered experiment runs and passes."""

import pytest

from repro.experiments import EXPERIMENTS, format_markdown, run_experiment

FAST_EXPERIMENTS = [
    "E-F1-T2.1-mds",
    "E-base-mvc",
    "E-T2.5-two-ecss",
    "E-T2.7-steiner",
    "E-F5-T4.3-T4.1-approx-maxis",
    "E-T4.2-linear-maxis",
    "E-F6-T4.4-T4.5-kmds",
    "E-F7-T4.6-T4.7-steiner-approx",
    "E-T4.8-restricted-mds",
    "E-T1.1-simulation",
    "E-C5.4-C5.9-protocol-limits",
    "E-C5.10-C5.11-nondeterminism",
    "E-T5.1-pls-compiler",
    "E-T3.3-T3.4-bounded-degree-reductions",
    "E-congest-local-separation",
    "E-L2.2-split-simulation",
]


def test_registry_is_populated():
    assert len(EXPERIMENTS) >= 18


@pytest.mark.parametrize("experiment_id", FAST_EXPERIMENTS)
def test_experiment_passes(experiment_id):
    record = run_experiment(experiment_id, quick=True)
    assert record.passed, record
    assert record.measured
    assert record.paper_claim


def test_markdown_formatting():
    record = run_experiment("E-T1.1-simulation", quick=True)
    md = format_markdown([record])
    assert "E-T1.1-simulation" in md
    assert md.count("|") > 8


def test_unknown_experiment_raises():
    with pytest.raises(KeyError):
        run_experiment("E-nonexistent")
