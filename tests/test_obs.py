"""Observability layer tests: tracers, metrics, cut-bit accounting,
profiling, and the ``repro report`` renderer."""

import json
import random

import pytest

from repro.cc.functions import random_input_pairs
from repro.cc.alice_bob import simulate_two_party
from repro.congest.algorithms.basic import BfsFromRoot, FloodMinId
from repro.congest.model import BandwidthExceeded, CongestSimulator, NodeAlgorithm
from repro.core.mds import MdsFamily
from repro.graphs import path_graph
from repro.obs import (
    JsonlTracer,
    Metrics,
    MultiTracer,
    NullTracer,
    RecordingTracer,
    TraceEvent,
    cut_bits_from_events,
    diff_profile,
    format_profile,
    profile_block,
    profile_stats,
    profiled,
    read_trace,
    render_report,
    reset_profile_stats,
    trace_to_directory,
)
from repro.experiments import run_experiment
from tests.conftest import connected_random_graph


def run_traced_bfs(tracer, graph=None, root_uid=0):
    g = graph if graph is not None else path_graph(3)
    sim = CongestSimulator(g, tracer=tracer)
    outputs = sim.run(BfsFromRoot,
                      inputs={v: root_uid for v in g.vertices()})
    return sim, outputs


class TestGoldenTrace:
    """BFS on the 3-path is fully deterministic: uid 0 informs uid 1 in
    round 0 (depth 0, 1 bit), uid 1 informs uid 2 in round 1 (depth 1,
    2 bits), everyone halts at round n = 3."""

    def test_event_sequence(self):
        rec = RecordingTracer()
        sim, __ = run_traced_bfs(rec)
        assert [e.kind for e in rec.events] == [
            "run_start",
            "message",                              # round 0: 0 -> 1
            "round_start", "message", "round_end",  # round 1: 1 -> 2
            "round_start", "round_end",             # round 2: quiet
            "round_start", "halt", "halt", "halt", "round_end",
            "run_end",
        ]

    def test_message_payloads(self):
        rec = RecordingTracer()
        run_traced_bfs(rec)
        msgs = rec.events_of("message")
        assert [(e.round, e.data["sender"], e.data["receiver"],
                 e.data["bits"], e.data["ok"]) for e in msgs] == [
            (0, 0, 1, 1, True),
            (1, 1, 2, 2, True),
        ]

    def test_totals_match_simulator_counters(self):
        rec = RecordingTracer()
        sim, __ = run_traced_bfs(rec)
        assert sim.rounds == 3
        msgs = rec.events_of("message")
        assert len(msgs) == sim.total_messages == 2
        assert sum(e.data["bits"] for e in msgs) == sim.total_bits == 3
        (end,) = rec.events_of("run_end")
        assert end.data == {
            "rounds": 3, "total_messages": 2, "total_bits": 3,
            "max_message_bits": 2,
        }

    def test_run_start_describes_instance(self):
        rec = RecordingTracer()
        sim, __ = run_traced_bfs(rec)
        (start,) = rec.events_of("run_start")
        assert start.data["n"] == 3
        assert start.data["edges"] == 2
        assert start.data["bandwidth"] == sim.bandwidth
        assert start.data["algorithm"] == "BfsFromRoot"

    def test_halts_cover_all_vertices(self):
        rec = RecordingTracer()
        run_traced_bfs(rec)
        assert sorted(e.data["uid"] for e in rec.events_of("halt")) == [0, 1, 2]


class TestTracerBehaviour:
    def test_null_tracer_receives_nothing_and_outputs_agree(self):
        null = NullTracer()
        __, out_null = run_traced_bfs(null)
        __, out_plain = run_traced_bfs(None)
        assert out_null == out_plain

    def test_multi_tracer_fans_out(self):
        a, b = RecordingTracer(), RecordingTracer()
        run_traced_bfs(MultiTracer([a, b]))
        assert [e.kind for e in a.events] == [e.kind for e in b.events]

    def test_multi_tracer_drops_disabled(self):
        mt = MultiTracer([NullTracer(), NullTracer()])
        assert not mt.enabled

    def test_legacy_observer_rides_event_stream(self):
        seen = []
        rec = RecordingTracer()
        g = path_graph(3)
        sim = CongestSimulator(g, tracer=rec)
        sim.observer = lambda s, r, b: seen.append((s, r, b))
        sim.run(BfsFromRoot, inputs={v: 0 for v in g.vertices()})
        assert seen == [(e.data["sender"], e.data["receiver"], e.data["bits"])
                        for e in rec.events_of("message")]
        assert len(seen) == sim.total_messages

    def test_bandwidth_violation_traced_before_raise(self):
        class Shout(NodeAlgorithm):
            def on_start(self, ctx):
                return {w: 1 << 500 for w in ctx.neighbors}

            def on_round(self, ctx, messages):
                ctx.halt()
                return {}

        rec = RecordingTracer()
        sim = CongestSimulator(path_graph(3), tracer=rec)
        with pytest.raises(BandwidthExceeded):
            sim.run(Shout)
        offending = rec.events_of("message")[-1]
        assert offending.data["ok"] is False
        assert offending.data["bits"] > sim.bandwidth


class TestJsonlRoundTrip:
    def test_roundtrip_preserves_events(self, tmp_path):
        path = tmp_path / "bfs.jsonl"
        rec = RecordingTracer()
        with JsonlTracer(path) as jt:
            run_traced_bfs(MultiTracer([rec, jt]))
        loaded = read_trace(path)
        assert loaded == rec.events

    def test_lines_are_plain_json(self, tmp_path):
        path = tmp_path / "bfs.jsonl"
        with JsonlTracer(path) as jt:
            run_traced_bfs(jt)
        for line in path.read_text().splitlines():
            flat = json.loads(line)
            assert "kind" in flat and "round" in flat

    def test_report_renders_roundtripped_trace(self, tmp_path):
        path = tmp_path / "bfs.jsonl"
        with JsonlTracer(path) as jt:
            run_traced_bfs(jt)
        report = render_report(read_trace(path))
        assert "BfsFromRoot" in report
        assert "| 3 |" in report          # the final round row
        assert "Busiest directed edges" in report

    def test_trace_to_directory_ambient(self, tmp_path):
        with trace_to_directory(str(tmp_path), prefix="amb", fmt="jsonl"):
            run_traced_bfs(None)
            run_traced_bfs(None)
        files = sorted(p.name for p in tmp_path.glob("amb-*.jsonl"))
        assert files == ["amb-0001.jsonl", "amb-0002.jsonl"]
        events = read_trace(tmp_path / files[0])
        assert events[0].kind == "run_start"
        assert events[-1].kind == "run_end"

    def test_trace_to_directory_defaults_to_binary(self, tmp_path):
        with trace_to_directory(str(tmp_path), prefix="amb"):
            run_traced_bfs(None)
        files = sorted(p.name for p in tmp_path.glob("amb-*"))
        assert files == ["amb-0001.rtb"]
        events = read_trace(tmp_path / files[0])
        assert events[0].kind == "run_start"
        assert events[-1].kind == "run_end"


class TestMetrics:
    def test_online_equals_offline(self, rng):
        g = connected_random_graph(10, 0.4, rng)
        online = Metrics()
        rec = RecordingTracer()
        sim = CongestSimulator(g, tracer=MultiTracer([online, rec]))
        sim.run(FloodMinId)
        offline = Metrics.from_events(rec.events)
        assert online.summary() == offline.summary()
        assert online.per_round.keys() == offline.per_round.keys()

    def test_totals_match_simulator(self, rng):
        g = connected_random_graph(10, 0.4, rng)
        metrics = Metrics()
        sim = CongestSimulator(g, tracer=metrics)
        sim.run(FloodMinId)
        assert metrics.total_messages == sim.total_messages
        assert metrics.total_bits == sim.total_bits
        assert metrics.rounds == sim.rounds
        assert sum(rs.bits for rs in metrics.per_round.values()) == sim.total_bits
        assert sum(es.bits for es in metrics.per_edge.values()) == sim.total_bits

    def test_utilization_bounded(self, rng):
        g = connected_random_graph(9, 0.5, rng)
        metrics = Metrics()
        sim = CongestSimulator(g, tracer=metrics)
        sim.run(FloodMinId)
        for rnd in metrics.round_numbers():
            util = metrics.round_utilization(rnd)
            assert 0.0 <= util <= 1.0
        for edge in metrics.per_edge:
            assert 0.0 <= metrics.edge_utilization(edge) <= 1.0

    def test_per_edge_messages_only_between_neighbors(self, rng):
        g = connected_random_graph(8, 0.4, rng)
        metrics = Metrics()
        sim = CongestSimulator(g, tracer=metrics)
        sim.run(FloodMinId)
        uid_edges = {(sim.uid_of[u], sim.uid_of[v]) for u, v in g.edges()}
        uid_edges |= {(b, a) for a, b in uid_edges}
        assert set(metrics.per_edge) <= uid_edges

    def test_busiest_edges_sorted(self, rng):
        g = connected_random_graph(9, 0.5, rng)
        metrics = Metrics()
        CongestSimulator(g, tracer=metrics).run(FloodMinId)
        busiest = metrics.busiest_edges(4)
        bits = [es.bits for es in busiest]
        assert bits == sorted(bits, reverse=True)


class TestCutBitAccounting:
    """Acceptance: on a set-disjointness instance, the trace-derived cut
    bits equal cc/alice_bob.py's count exactly."""

    def _instance(self):
        fam = MdsFamily(4)
        rng = random.Random(0xB17)
        x, y = random_input_pairs(fam.k_bits, 2, rng)[0]
        return fam, fam.build(x, y)

    def test_trace_matches_alice_bob_exactly(self):
        fam, g = self._instance()
        rec = RecordingTracer()
        sim = simulate_two_party(g, fam.alice_vertices(), FloodMinId,
                                 tracer=rec)
        probe = CongestSimulator(g)
        alice_uids = {probe.uid_of[v] for v in fam.alice_vertices()}
        from_trace = cut_bits_from_events(rec.events, alice_uids)
        assert from_trace.cut_bits == sim.cut_bits
        assert from_trace.cut_messages == sim.cut_messages
        assert from_trace.bits_by_round == sim.cut_bits_by_round

    def test_by_round_sums_to_total(self):
        fam, g = self._instance()
        sim = simulate_two_party(g, fam.alice_vertices(), FloodMinId)
        assert sum(sim.cut_bits_by_round.values()) == sim.cut_bits
        assert sim.within_budget

    def test_report_cut_column(self, tmp_path):
        fam, g = self._instance()
        path = tmp_path / "cut.jsonl"
        with JsonlTracer(path) as jt:
            sim = simulate_two_party(g, fam.alice_vertices(), FloodMinId,
                                     tracer=jt)
        probe = CongestSimulator(g)
        alice_uids = {probe.uid_of[v] for v in fam.alice_vertices()}
        report = render_report(read_trace(path), alice_uids=alice_uids)
        assert f"cut bits = {sim.cut_bits} " in report


class TestProfiling:
    def test_decorator_counts_calls_and_time(self):
        reset_profile_stats()

        @profiled(name="obs-test-fn")
        def fn(x):
            return x * 2

        assert [fn(i) for i in range(5)] == [0, 2, 4, 6, 8]
        stats = profile_stats()
        assert stats["obs-test-fn"].calls == 5
        assert stats["obs-test-fn"].seconds >= 0.0

    def test_profile_block(self):
        reset_profile_stats()
        with profile_block("obs-test-block"):
            sum(range(1000))
        assert profile_stats()["obs-test-block"].calls == 1

    def test_diff_and_format(self):
        reset_profile_stats()

        @profiled(name="obs-test-diff")
        def fn():
            return None

        before = profile_stats()
        fn(), fn()
        delta = diff_profile(before, profile_stats())
        assert delta["obs-test-diff"].calls == 2
        assert "obs-test-diff x2" in format_profile(delta)

    def test_solver_entry_points_are_profiled(self, rng):
        from repro.solvers import min_dominating_set

        reset_profile_stats()
        g = connected_random_graph(8, 0.4, rng)
        min_dominating_set(g)
        stats = profile_stats()
        assert any("dominating" in name for name in stats)

    def test_experiment_surfaces_profile(self):
        record = run_experiment("E-universal-upper-bound", profile=True)
        assert "solver_profile" in record.measured
        assert "dominating" in record.measured["solver_profile"]


class TestRunnerTraceDir:
    def test_experiment_emits_readable_traces(self, tmp_path):
        record = run_experiment("E-T1.1-simulation",
                                trace_dir=str(tmp_path))
        assert record.passed
        files = sorted(tmp_path.glob("E-T1.1-simulation-*.rtb"))
        assert files
        events = read_trace(files[0])
        assert events[0].kind == "run_start"
        assert any(e.kind == "message" for e in events)

    def test_experiment_trace_format_jsonl(self, tmp_path):
        record = run_experiment("E-T1.1-simulation",
                                trace_dir=str(tmp_path),
                                trace_format="jsonl")
        assert record.passed
        files = sorted(tmp_path.glob("E-T1.1-simulation-*.jsonl"))
        assert files
        assert read_trace(files[0])[0].kind == "run_start"


class TestReportCli:
    def _write_trace(self, tmp_path):
        path = tmp_path / "cli.jsonl"
        with JsonlTracer(path) as jt:
            run_traced_bfs(jt)
        return path

    def test_report_smoke(self, tmp_path, capsys):
        from repro.cli import main

        main(["report", str(self._write_trace(tmp_path))])
        out = capsys.readouterr().out
        assert "CONGEST trace report" in out
        assert "BfsFromRoot" in out

    def test_report_with_cut(self, tmp_path, capsys):
        from repro.cli import main

        main(["report", str(self._write_trace(tmp_path)), "--cut", "0"])
        out = capsys.readouterr().out
        assert "cut bits" in out

    def test_report_missing_file(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["report", str(tmp_path / "nope.jsonl")])

    def test_report_rejects_bad_cut(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["report", str(self._write_trace(tmp_path)),
                  "--cut", "a,b"])


class TestTraceEventSerialization:
    def test_json_roundtrip(self):
        event = TraceEvent("message", 7,
                           {"sender": 1, "receiver": 2, "bits": 3, "ok": True})
        assert TraceEvent.from_json(event.to_json()) == event
