"""Matching, flow, distance, 2-ECSS, 2-spanner and MaxSAT solver tests."""

import pytest

from repro.formulas import CNF, neg, pos
from repro.graphs import DiGraph, Graph, complete_graph, cycle_graph, path_graph, random_graph
from repro.solvers import (
    bridges,
    dijkstra,
    has_two_ecss_with_edges,
    is_two_edge_connected,
    is_two_spanner,
    max_flow,
    max_matching,
    max_matching_size,
    max_sat_assignment,
    max_sat_value,
    min_st_cut,
    min_two_ecss_edges,
    min_two_spanner,
    min_two_spanner_cost,
    tutte_berge_value,
    tutte_berge_witness,
    weighted_distance,
)
from tests.conftest import connected_random_graph


class TestMatching:
    def test_path_matchings(self):
        assert max_matching_size(path_graph(4)) == 2
        assert max_matching_size(path_graph(5)) == 2

    def test_complete(self):
        assert max_matching_size(complete_graph(6)) == 3
        assert max_matching_size(complete_graph(7)) == 3

    def test_matching_is_valid(self, rng):
        g = random_graph(10, 0.4, rng)
        used = set()
        for u, v in max_matching(g):
            assert g.has_edge(u, v)
            assert u not in used and v not in used
            used.update((u, v))

    def test_tutte_berge_witness_tight(self, rng):
        for __ in range(6):
            g = random_graph(8, 0.35, rng)
            witness = tutte_berge_witness(g)
            assert tutte_berge_value(g, witness) == max_matching_size(g)

    def test_tutte_berge_upper_bound(self, rng):
        from itertools import combinations

        g = random_graph(7, 0.4, rng)
        nu = max_matching_size(g)
        for r in range(3):
            for u_set in combinations(g.vertices(), r):
                assert tutte_berge_value(g, u_set) >= nu


class TestFlow:
    def test_unit_path(self):
        g = path_graph(4)
        value, flow = max_flow(g, 0, 3)
        assert value == 1

    def test_cycle_two_paths(self):
        g = cycle_graph(6)
        value, __ = max_flow(g, 0, 3)
        assert value == 2

    def test_capacities(self):
        g = path_graph(3)
        g.set_edge_weight(0, 1, 5)
        g.set_edge_weight(1, 2, 3)
        value, __ = max_flow(g, 0, 2)
        assert value == 3

    def test_directed(self):
        dg = DiGraph()
        dg.add_edge("s", "a", weight=2)
        dg.add_edge("a", "t", weight=1)
        value, __ = max_flow(dg, "s", "t")
        assert value == 1

    def test_min_cut_matches_flow(self, rng):
        for __ in range(6):
            g = connected_random_graph(8, 0.4, rng)
            for u, v in g.edges():
                g.set_edge_weight(u, v, rng.randint(1, 5))
            vs = g.vertices()
            fvalue, __f = max_flow(g, vs[0], vs[-1])
            cvalue, side = min_st_cut(g, vs[0], vs[-1])
            assert abs(fvalue - cvalue) < 1e-9
            # cut side weight really equals the value
            w = sum(g.edge_weight(u, v) for u, v in g.edges()
                    if (u in side) != (v in side))
            assert abs(w - cvalue) < 1e-9

    def test_same_vertex_rejected(self):
        with pytest.raises(ValueError):
            max_flow(path_graph(2), 0, 0)


class TestDistance:
    def test_unweighted(self):
        assert weighted_distance(path_graph(5), 0, 4) == 4

    def test_weighted(self):
        g = cycle_graph(4)
        g.set_edge_weight(0, 1, 10)
        g.set_edge_weight(1, 2, 10)
        assert weighted_distance(g, 0, 2) == 2  # around the other way

    def test_unreachable(self):
        g = Graph()
        g.add_vertices([0, 1])
        assert weighted_distance(g, 0, 1) == float("inf")

    def test_negative_weight_rejected(self):
        g = path_graph(2)
        g.set_edge_weight(0, 1, -1)
        with pytest.raises(ValueError):
            dijkstra(g, 0)


class TestTwoEcss:
    def test_bridges_of_path(self):
        assert len(bridges(path_graph(4))) == 3

    def test_cycle_has_no_bridges(self):
        assert bridges(cycle_graph(5)) == []

    def test_two_edge_connected(self):
        assert is_two_edge_connected(cycle_graph(4))
        assert not is_two_edge_connected(path_graph(4))

    def test_min_two_ecss_of_cycle(self):
        assert min_two_ecss_edges(cycle_graph(5)) == 5

    def test_min_two_ecss_of_k4(self):
        assert min_two_ecss_edges(complete_graph(4)) == 4

    def test_claim_2_7(self, rng):
        """2-ECSS with exactly n edges iff Hamiltonian (Claim 2.7)."""
        from repro.solvers import has_hamiltonian_cycle

        for __ in range(8):
            g = random_graph(6, 0.55, rng)
            assert has_two_ecss_with_edges(g, g.n) == \
                has_hamiltonian_cycle(g)

    def test_too_few_edges_impossible(self):
        g = cycle_graph(5)
        assert not has_two_ecss_with_edges(g, 4)


class TestTwoSpanner:
    def test_keeping_everything_is_a_spanner(self):
        g = complete_graph(4)
        assert is_two_spanner(g, g.edges())

    def test_star_spans_clique(self):
        g = complete_graph(4)
        star = [(0, v) for v in (1, 2, 3)]
        assert is_two_spanner(g, star)

    def test_missing_coverage_detected(self):
        g = cycle_graph(5)
        assert not is_two_spanner(g, g.edges()[:2])

    def test_min_spanner_of_clique(self):
        g = complete_graph(4)
        cost, edges = min_two_spanner(g)
        assert cost == 3  # one star

    def test_weights_matter(self):
        g = complete_graph(3)
        g.set_edge_weight(0, 1, 10)
        g.set_edge_weight(1, 2, 1)
        g.set_edge_weight(0, 2, 1)
        # spanning (0,1) via vertex 2 costs 2 < 10
        assert min_two_spanner_cost(g) == 2

    def test_limit(self):
        with pytest.raises(ValueError):
            min_two_spanner(complete_graph(9))


class TestMaxSat:
    def test_trivially_satisfiable(self):
        cnf = CNF([[pos("a")], [pos("b")]])
        assert max_sat_value(cnf) == 2

    def test_contradiction(self):
        cnf = CNF([[pos("a")], [neg("a")]])
        assert max_sat_value(cnf) == 1

    def test_two_clause(self):
        cnf = CNF([[pos("a"), pos("b")], [neg("a"), pos("b")], [neg("b")]])
        value, assignment = max_sat_assignment(cnf)
        assert value == 2
        assert cnf.satisfied_count(assignment) == value

    def test_component_decomposition(self):
        clauses = []
        for i in range(8):
            clauses.append([pos(("x", i))])
            clauses.append([neg(("x", i))])
        cnf = CNF(clauses)
        assert max_sat_value(cnf) == 8

    def test_empty_clause_rejected(self):
        with pytest.raises(ValueError):
            CNF([[]])

    def test_occurrences(self):
        cnf = CNF([[pos("a"), pos("b")], [neg("a")]])
        assert cnf.occurrences("a") == 2
        assert cnf.occurrences("b") == 1
