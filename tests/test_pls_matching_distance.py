"""PLS tests: matching (Claim 5.12), weighted distance (Claim 5.13), and
the Theorem 5.1 PLS→ND-protocol compiler."""

import networkx as nx
import pytest

from repro.core.mds import MdsFamily
from repro.cc.functions import random_input_pairs
from repro.graphs import Graph, complete_graph, cycle_graph, path_graph
from repro.pls import (
    DistanceAtLeastPls,
    DistanceLessThanPls,
    MatchingAtLeastPls,
    MatchingLessThanPls,
    SpanningTreePls,
    check_completeness,
    check_soundness_samples,
    pls_to_nondeterministic_protocol,
)
from repro.pls.scheme import PlsInstance, edge_key
from repro.solvers import max_matching_size, weighted_distance
from tests.conftest import connected_random_graph


class TestMatchingPls:
    def test_at_least_completeness(self, rng):
        g = connected_random_graph(8, 0.4, rng)
        nu = max_matching_size(g)
        check_completeness(MatchingAtLeastPls(), PlsInstance(graph=g, k=nu))

    def test_at_least_soundness(self, rng):
        g = connected_random_graph(8, 0.4, rng)
        nu = max_matching_size(g)
        yes = PlsInstance(graph=g, k=nu)
        no = PlsInstance(graph=g, k=nu + 1)
        check_soundness_samples(MatchingAtLeastPls(), no, rng,
                                donor_instances=[yes])

    def test_less_than_completeness(self, rng):
        g = connected_random_graph(8, 0.4, rng)
        nu = max_matching_size(g)
        check_completeness(MatchingLessThanPls(),
                           PlsInstance(graph=g, k=nu + 1))

    def test_less_than_soundness(self, rng):
        g = connected_random_graph(8, 0.4, rng)
        nu = max_matching_size(g)
        yes = PlsInstance(graph=g, k=nu + 1)
        no = PlsInstance(graph=g, k=nu)
        check_soundness_samples(MatchingLessThanPls(), no, rng,
                                donor_instances=[yes])

    def test_odd_cycle_deficiency(self, rng):
        g = cycle_graph(7)  # ν = 3, Tutte-Berge needs a real witness
        check_completeness(MatchingLessThanPls(), PlsInstance(graph=g, k=4))

    def test_perfect_matching_boundary(self, rng):
        g = complete_graph(6)
        check_completeness(MatchingAtLeastPls(), PlsInstance(graph=g, k=3))
        check_completeness(MatchingLessThanPls(), PlsInstance(graph=g, k=4))


class TestDistancePls:
    def _weighted(self, rng):
        g = connected_random_graph(8, 0.4, rng)
        for u, v in g.edges():
            g.set_edge_weight(u, v, rng.randint(1, 9))
        vs = g.vertices()
        return g, vs[0], vs[-1]

    def test_at_least(self, rng):
        g, s, t = self._weighted(rng)
        d = weighted_distance(g, s, t)
        check_completeness(DistanceAtLeastPls(),
                           PlsInstance(graph=g, s=s, t=t, k=d))
        yes = PlsInstance(graph=g, s=s, t=t, k=d)
        no = PlsInstance(graph=g, s=s, t=t, k=d + 1)
        check_soundness_samples(DistanceAtLeastPls(), no, rng,
                                donor_instances=[yes])

    def test_less_than(self, rng):
        g, s, t = self._weighted(rng)
        d = weighted_distance(g, s, t)
        check_completeness(DistanceLessThanPls(),
                           PlsInstance(graph=g, s=s, t=t, k=d + 1))
        yes = PlsInstance(graph=g, s=s, t=t, k=d + 1)
        no = PlsInstance(graph=g, s=s, t=t, k=d)
        check_soundness_samples(DistanceLessThanPls(), no, rng,
                                donor_instances=[yes])

    def test_unreachable_target(self, rng):
        g = Graph()
        g.add_edge("s", "a", weight=1)
        g.add_vertex("t")
        check_completeness(DistanceAtLeastPls(),
                           PlsInstance(graph=g, s="s", t="t", k=100))

    def test_fake_shortcut_rejected(self, rng):
        """An adversary cannot under-claim distances: the min-equality
        fixpoint is unique with positive weights."""
        g = path_graph(4)
        for u, v in g.edges():
            g.set_edge_weight(u, v, 2)
        # true distance 6; claim < 5 must fail
        no = PlsInstance(graph=g, s=0, t=3, k=5)
        yes = PlsInstance(graph=g, s=0, t=3, k=7)
        check_soundness_samples(DistanceLessThanPls(), no, rng,
                                donor_instances=[yes])


class TestTheorem51Compiler:
    def test_compiled_protocol_complete_and_cheap(self, rng):
        fam = MdsFamily(4)
        va = fam.alice_vertices()

        def build_instance(x, y):
            g = fam.build(x, y)
            root = sorted(g.vertices(), key=repr)[0]
            tree = list(nx.bfs_tree(g.to_networkx(), root).edges())
            return PlsInstance(graph=g, subgraph=frozenset(
                edge_key(u, v) for u, v in tree))

        proto = pls_to_nondeterministic_protocol(SpanningTreePls(),
                                                 build_instance, va)
        x, y = random_input_pairs(fam.k_bits, 2, rng)[0]
        res = proto.check_completeness(x, y)
        # O(pls-size · |Ecut|): generous constant for python label overhead
        assert res.bits <= 64 * 64 * len(fam.cut_edges())

    def test_compiled_protocol_rejects_bad_certificates(self, rng):
        fam = MdsFamily(4)
        va = fam.alice_vertices()

        def build_instance(x, y):
            g = fam.build(x, y)
            root = sorted(g.vertices(), key=repr)[0]
            tree = list(nx.bfs_tree(g.to_networkx(), root).edges())
            # drop an edge: NOT a spanning tree
            return PlsInstance(graph=g, subgraph=frozenset(
                edge_key(u, v) for u, v in tree[:-1]))

        proto = pls_to_nondeterministic_protocol(SpanningTreePls(),
                                                 build_instance, va)
        x, y = random_input_pairs(fam.k_bits, 2, rng)[0]
        # certificates from empty/garbage space must all be rejected
        proto.check_soundness(x, y, [({}, {}), (0, 0), ({"a": 1}, {"b": 2})])
