"""Theorem 2.7 Steiner family tests (Claim 2.8) and Theorem 2.6 checks."""

import pytest

from repro.cc.functions import (
    random_disjoint_pair,
    random_input_pairs,
    random_intersecting_pair,
)
from repro.core.family import validate_family, verify_iff
from repro.core.mds import fvert, tvert
from repro.core.steiner import SteinerTreeFamily, copy_of
from repro.solvers import is_steiner_tree


@pytest.fixture(scope="module")
def fam():
    return SteinerTreeFamily(4)


class TestConstruction:
    def test_doubles_vertices(self, fam):
        base_n = fam.mds.fixed_graph().n
        assert fam.n_vertices() == 2 * base_n

    def test_identity_edges(self, fam):
        g = fam.build((0,) * 16, (0,) * 16)
        for v in fam.mds.fixed_graph().vertices():
            assert g.has_edge(copy_of(v), v)

    def test_original_edges_rewired(self, fam):
        base = fam.mds.fixed_graph()
        g = fam.build((0,) * 16, (0,) * 16)
        u, v = base.edges()[0]
        assert g.has_edge(copy_of(u), v)
        assert g.has_edge(copy_of(v), u)
        assert not g.has_edge(u, v)  # originals form an independent set

    def test_terminals_independent(self, fam):
        g = fam.build((1,) * 16, (1,) * 16)
        terms = set(fam.terminals())
        for u, v in g.edges():
            assert not (u in terms and v in terms)

    def test_cliques(self, fam):
        g = fam.build((0,) * 16, (0,) * 16)
        va = list(fam.mds.alice_vertices())
        assert g.has_edge(copy_of(va[0]), copy_of(va[1]))

    def test_exactly_two_crossing_edges(self, fam):
        g = fam.build((0,) * 16, (0,) * 16)
        va = fam.mds.alice_vertices()
        crossing = [(u, v) for u, v in g.edges()
                    if isinstance(u, tuple) and u[0] == "copy"
                    and isinstance(v, tuple) and v[0] == "copy"
                    and ((u[1] in va) != (v[1] in va))]
        assert len(crossing) == 2

    def test_definition_1_1(self, fam):
        validate_family(fam)

    def test_cut_logarithmic(self, fam):
        # 2 edges per original cut edge + 2 crossing edges
        assert len(fam.cut_edges()) == 2 * len(fam.mds.cut_edges()) + 2


class TestClaim28:
    def test_iff_sweep(self, fam, rng):
        pairs = random_input_pairs(16, 4, rng)
        report = verify_iff(fam, pairs, negate=True)
        assert report.true_instances and report.false_instances

    def test_witness_tree(self, fam, rng):
        x, y = random_intersecting_pair(16, rng)
        edges = fam.witness_steiner_tree(x, y)
        assert len(edges) == fam.target_edges
        assert is_steiner_tree(fam.build(x, y), edges, fam.terminals())

    def test_disjoint_needs_more(self, fam, rng):
        x, y = random_disjoint_pair(16, rng)
        size = fam.min_steiner_size(fam.build(x, y))
        assert size > fam.target_edges

    def test_min_size_tracks_domination(self, fam, rng):
        """min Steiner = |Term| − 1 + min constrained domination."""
        x, y = random_intersecting_pair(16, rng)
        g = fam.build(x, y)
        size = fam.min_steiner_size(g)
        # intersecting inputs: the MDS family optimum is 4 log k + 2 and
        # the witness uses a crossing pair, so the bound is tight
        assert size == len(fam.terminals()) - 1 + 4 * fam.log_k + 2

    def test_target_formula(self):
        fam8 = SteinerTreeFamily(8)
        assert fam8.target_edges == 4 * 8 + 16 * 3 + 1
