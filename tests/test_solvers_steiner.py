"""Steiner tree solver tests (Dreyfus-Wagner and the §4.4 variants)."""

from itertools import combinations

import pytest

from repro.graphs import DiGraph, Graph, complete_graph, cycle_graph, path_graph, random_graph
from repro.solvers import is_steiner_tree, steiner_tree, steiner_tree_cost
from repro.solvers.steiner import (
    min_directed_steiner_reachability_cost,
    min_node_weighted_steiner_cost,
)
from tests.conftest import connected_random_graph


def brute_force_steiner_cost(graph, terminals):
    """Reference: minimum spanning-tree cost over all supersets."""
    terminals = set(terminals)
    others = [v for v in graph.vertices() if v not in terminals]
    best = float("inf")
    for r in range(len(others) + 1):
        for extra in combinations(others, r):
            vs = terminals | set(extra)
            sub = graph.induced_subgraph(vs)
            if not sub.is_connected():
                continue
            # MST of induced subgraph
            import networkx as nx

            t = nx.minimum_spanning_tree(sub.to_networkx())
            cost = sum(d["weight"] for _u, _v, d in t.edges(data=True))
            best = min(best, cost)
    return best


class TestSteinerTreeCost:
    def test_two_terminals_is_shortest_path(self):
        g = path_graph(5)
        assert steiner_tree_cost(g, [0, 4]) == 4

    def test_single_terminal(self):
        assert steiner_tree_cost(cycle_graph(5), [0]) == 0

    def test_all_terminals_is_mst(self):
        g = cycle_graph(4)
        assert steiner_tree_cost(g, g.vertices()) == 3

    def test_weighted_shortcut(self):
        g = cycle_graph(4)
        for u, v in g.edges():
            g.set_edge_weight(u, v, 1)
        g.set_edge_weight(0, 1, 10)
        assert steiner_tree_cost(g, [0, 1]) == 3

    def test_matches_brute_force(self, rng):
        for __ in range(6):
            g = connected_random_graph(7, 0.5, rng)
            for u, v in g.edges():
                g.set_edge_weight(u, v, rng.randint(1, 5))
            terms = g.vertices()[:3]
            assert abs(steiner_tree_cost(g, terms) -
                       brute_force_steiner_cost(g, terms)) < 1e-9

    def test_terminal_limit(self):
        g = complete_graph(16)
        with pytest.raises(ValueError):
            steiner_tree_cost(g, g.vertices())

    def test_tree_recovery(self, rng):
        g = connected_random_graph(7, 0.5, rng)
        terms = g.vertices()[:3]
        cost, edges = steiner_tree(g, terms)
        assert is_steiner_tree(g, edges, terms)
        assert abs(sum(g.edge_weight(u, v) for u, v in edges) - cost) < 1e-9


class TestIsSteinerTree:
    def test_accepts_path(self):
        g = path_graph(4)
        assert is_steiner_tree(g, [(0, 1), (1, 2), (2, 3)], [0, 3])

    def test_rejects_cycle(self):
        g = cycle_graph(3)
        assert not is_steiner_tree(g, g.edges(), [0, 1])

    def test_rejects_disconnected(self):
        g = path_graph(4)
        assert not is_steiner_tree(g, [(0, 1), (2, 3)], [0, 3])

    def test_rejects_non_spanning(self):
        g = path_graph(4)
        assert not is_steiner_tree(g, [(0, 1)], [0, 3])

    def test_rejects_fake_edges(self):
        g = path_graph(4)
        assert not is_steiner_tree(g, [(0, 3)], [0, 3])


class TestNodeWeightedSteiner:
    def test_free_graph(self):
        g = cycle_graph(5)
        for v in g.vertices():
            g.set_vertex_weight(v, 0)
        assert min_node_weighted_steiner_cost(g, [0, 2]) == 0

    def test_mandatory_middle_vertex(self):
        g = path_graph(3)
        g.set_vertex_weight(0, 0)
        g.set_vertex_weight(2, 0)
        g.set_vertex_weight(1, 7)
        assert min_node_weighted_steiner_cost(g, [0, 2]) == 7

    def test_chooses_cheaper_branch(self):
        g = Graph()
        g.add_edges([("s", "a"), ("a", "t"), ("s", "b"), ("b", "t")])
        g.set_vertex_weight("s", 0)
        g.set_vertex_weight("t", 0)
        g.set_vertex_weight("a", 3)
        g.set_vertex_weight("b", 1)
        assert min_node_weighted_steiner_cost(g, ["s", "t"]) == 1

    def test_terminal_weights_charged(self):
        g = path_graph(2)
        g.set_vertex_weight(0, 2)
        g.set_vertex_weight(1, 3)
        assert min_node_weighted_steiner_cost(g, [0, 1]) == 5

    def test_limit(self):
        g = complete_graph(20)
        with pytest.raises(ValueError):
            min_node_weighted_steiner_cost(g, [0, 1], limit_candidates=5)


class TestDirectedSteinerReachability:
    def test_simple_path(self):
        dg = DiGraph()
        dg.add_edge("r", "a", weight=2)
        dg.add_edge("a", "t", weight=0)
        assert min_directed_steiner_reachability_cost(dg, "r", ["t"]) == 2

    def test_picks_cheaper_route(self):
        dg = DiGraph()
        dg.add_edge("r", "a", weight=5)
        dg.add_edge("a", "t", weight=0)
        dg.add_edge("r", "b", weight=1)
        dg.add_edge("b", "t", weight=0)
        assert min_directed_steiner_reachability_cost(dg, "r", ["t"]) == 1

    def test_shared_prefix(self):
        dg = DiGraph()
        dg.add_edge("r", "hub", weight=3)
        dg.add_edge("hub", "t1", weight=0)
        dg.add_edge("hub", "t2", weight=0)
        assert min_directed_steiner_reachability_cost(
            dg, "r", ["t1", "t2"]) == 3

    def test_unreachable_is_infinite(self):
        dg = DiGraph()
        dg.add_vertex("r")
        dg.add_vertex("t")
        assert min_directed_steiner_reachability_cost(
            dg, "r", ["t"]) == float("inf")
