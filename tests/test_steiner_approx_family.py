"""Section 4.4 Steiner approximation family tests (Theorems 4.6-4.7)."""

import pytest

from repro.cc.functions import (
    random_disjoint_pair,
    random_input_pairs,
    random_intersecting_pair,
)
from repro.core.family import validate_family, verify_iff
from repro.core.kmds import A_SPECIAL, R_SPECIAL, avert, bvert, scomp, svert
from repro.core.steiner_approx import DirectedSteinerFamily, NodeWeightedSteinerFamily
from repro.covering.designs import build_covering_collection
from repro.solvers.steiner import min_directed_steiner_reachability_cost


@pytest.fixture(scope="module")
def collection():
    return build_covering_collection(universe_size=16, T=6, r=2, seed=0)


class TestNodeWeighted:
    @pytest.fixture(scope="class")
    def fam(self, collection):
        return NodeWeightedSteinerFamily(collection)

    def test_terminals_free(self, fam, rng):
        g = fam.build(*random_input_pairs(fam.k_bits, 1, rng)[0])
        for t in fam.terminals():
            assert g.vertex_weight(t) == 0

    def test_definition_1_1(self, fam):
        validate_family(fam)

    def test_iff_sweep(self, fam, rng):
        report = verify_iff(fam, random_input_pairs(fam.k_bits, 6, rng),
                            negate=True)
        assert report.true_instances and report.false_instances

    def test_lemma_45_gap(self, fam, rng):
        x, y = random_intersecting_pair(fam.k_bits, rng)
        assert fam.optimum(fam.build(x, y)) == 2
        x, y = random_disjoint_pair(fam.k_bits, rng)
        assert fam.optimum(fam.build(x, y)) > fam.collection.r


class TestDirected:
    @pytest.fixture(scope="class")
    def fam(self, collection):
        return DirectedSteinerFamily(collection)

    def test_edge_weights(self, fam):
        g = fam.fixed_graph()
        assert g.edge_weight(R_SPECIAL, A_SPECIAL) == 0
        assert g.edge_weight(A_SPECIAL, svert(0)) == 1
        assert g.edge_weight(A_SPECIAL, avert(0)) == fam.alpha

    def test_input_toggles_set_edges(self, fam, rng):
        x = tuple(1 if i == 0 else 0 for i in range(fam.k_bits))
        y = tuple([0] * fam.k_bits)
        g = fam.build(x, y)
        cc = fam.collection
        j_in = next(iter(cc.sets[0]))
        assert g.has_edge(svert(0), avert(j_in))
        # a zero bit leaves the set vertex dangling
        if fam.k_bits > 1:
            j1 = next(iter(cc.sets[1]))
            assert not g.has_edge(svert(1), avert(j1))

    def test_definition_1_1(self, fam):
        validate_family(fam)

    def test_iff_sweep(self, fam, rng):
        report = verify_iff(fam, random_input_pairs(fam.k_bits, 6, rng),
                            negate=True)
        assert report.true_instances and report.false_instances

    def test_lemma_46_gap(self, fam, rng):
        x, y = random_intersecting_pair(fam.k_bits, rng)
        assert fam.optimum(fam.build(x, y)) == 2
        x, y = random_disjoint_pair(fam.k_bits, rng)
        assert fam.optimum(fam.build(x, y)) > fam.collection.r

    def test_structured_matches_generic(self, rng):
        """Cross-validate the set-cover optimum against brute-force
        reachability enumeration on a tiny collection."""
        small = build_covering_collection(universe_size=5, T=3, r=1, seed=2)
        fam = DirectedSteinerFamily(small)
        for x, y in random_input_pairs(3, 4, rng):
            g = fam.build(x, y)
            assert fam.optimum(g) == min_directed_steiner_reachability_cost(
                g, R_SPECIAL, fam.terminals())
