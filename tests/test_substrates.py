"""Expander gadgets (Claim 3.2), Reed-Solomon codes (§4.1), and covering
collections (Lemma 4.2)."""

from itertools import combinations

import pytest

from repro.codes import PrimeField, ReedSolomonCode, hamming_distance
from repro.codes.gf import is_prime, next_prime
from repro.covering import (
    CoveringCollection,
    build_covering_collection,
    has_r_covering_property,
)
from repro.expanders import (
    build_gadget,
    certified_cubic_expander,
    spectral_expansion,
    verify_cut_property_exact,
)


class TestPrimeField:
    def test_is_prime(self):
        assert [n for n in range(2, 20) if is_prime(n)] == \
            [2, 3, 5, 7, 11, 13, 17, 19]

    def test_next_prime(self):
        assert next_prime(8) == 11
        assert next_prime(11) == 11

    def test_rejects_composite(self):
        with pytest.raises(ValueError):
            PrimeField(9)

    def test_field_axioms_spot(self):
        f = PrimeField(7)
        for a in range(1, 7):
            assert f.mul(a, f.inv(a)) == 1
        assert f.add(5, 4) == 2
        assert f.sub(2, 5) == 4

    def test_inverse_of_zero(self):
        with pytest.raises(ZeroDivisionError):
            PrimeField(5).inv(0)

    def test_poly_eval(self):
        f = PrimeField(5)
        # 1 + 2x + 3x² at x=2: 1+4+12 = 17 = 2 mod 5
        assert f.eval_poly([1, 2, 3], 2) == 2


class TestReedSolomon:
    def test_parameters(self):
        rs = ReedSolomonCode(PrimeField(11), n=8, k=3)
        assert rs.distance == 6
        assert rs.size == 11 ** 3

    def test_field_too_small(self):
        with pytest.raises(ValueError):
            ReedSolomonCode(PrimeField(5), n=5, k=2)

    def test_distance_is_exact(self):
        rs = ReedSolomonCode(PrimeField(7), n=6, k=2)
        words = [rs.encode_int(i) for i in range(rs.size)]
        mind = min(hamming_distance(a, b)
                   for a, b in combinations(words, 2))
        assert mind == rs.distance

    def test_encode_int_distinct(self):
        rs = ReedSolomonCode(PrimeField(5), n=4, k=2)
        words = {rs.encode_int(i) for i in range(rs.size)}
        assert len(words) == rs.size

    def test_encode_int_range(self):
        rs = ReedSolomonCode(PrimeField(5), n=4, k=1)
        with pytest.raises(ValueError):
            rs.encode_int(5)

    def test_message_length_checked(self):
        rs = ReedSolomonCode(PrimeField(5), n=4, k=2)
        with pytest.raises(ValueError):
            rs.encode([1])


class TestExpanders:
    def test_certified_expansion_positive(self):
        g, c = certified_cubic_expander(12, min_expansion=0.05, seed=0)
        assert c >= 0.05
        assert g.is_connected()
        assert all(g.degree(v) == 3 for v in g.vertices())

    def test_cycle_is_a_bad_expander(self):
        from repro.graphs import cycle_graph

        g = cycle_graph(20)
        assert spectral_expansion(g, degree=2) < 0.05

    def test_odd_n_rejected(self):
        with pytest.raises(ValueError):
            certified_cubic_expander(7)


class TestGadget:
    @pytest.mark.parametrize("d", [1, 2, 3, 4, 5, 6, 7])
    def test_gadget_properties(self, d):
        g = build_gadget(d, seed=1)
        assert g.d == d
        assert g.graph.max_degree() <= 4
        assert all(g.graph.degree(v) <= 2 for v in g.distinguished)
        if d >= 2:
            assert g.graph.is_connected()

    @pytest.mark.parametrize("d", [2, 3, 5, 6])
    def test_cut_property_exact(self, d):
        g = build_gadget(d, seed=1)
        assert verify_cut_property_exact(g)

    def test_cut_property_catches_violation(self):
        # two distinguished vertices joined by a path: the cut property
        # holds; but two ISOLATED distinguished vertices violate it
        from repro.expanders.gadget import ExpanderGadget
        from repro.graphs import Graph

        g = Graph()
        g.add_vertex(("D", 0))
        g.add_vertex(("D", 1))
        gadget = ExpanderGadget(graph=g,
                                distinguished=[("D", 0), ("D", 1)])
        assert not verify_cut_property_exact(gadget)

    def test_diameter_logarithmic(self):
        import math

        for d in (4, 8):
            g = build_gadget(d, seed=1)
            assert g.graph.diameter() <= 6 * max(1, math.log2(d)) + 6

    def test_invalid_d(self):
        with pytest.raises(ValueError):
            build_gadget(0)


class TestCoveringCollections:
    def test_build_and_verify(self):
        cc = build_covering_collection(universe_size=16, T=6, r=2, seed=0)
        assert cc.T == 6
        assert has_r_covering_property(cc.universe_size, cc.sets, cc.r)

    def test_no_empty_or_full_sets(self):
        cc = build_covering_collection(universe_size=16, T=6, r=2, seed=0)
        universe = frozenset(range(16))
        for s in cc.sets:
            assert s and s != universe

    def test_complement(self):
        cc = build_covering_collection(universe_size=16, T=6, r=2, seed=0)
        assert cc.complement(0) == frozenset(range(16)) - cc.sets[0]

    def test_property_rejects_bad_collection(self):
        # S0 ∪ S1 covers everything with r = 2
        sets = [frozenset({0, 1}), frozenset({2, 3})]
        assert not has_r_covering_property(4, sets, 2)

    def test_property_ignores_complementary_pairs(self):
        # S0 ∪ S̄0 always covers; the property must skip that pair
        sets = [frozenset({0})]
        assert has_r_covering_property(2, sets, 2)

    def test_infeasible_regime_raises(self):
        with pytest.raises(RuntimeError):
            # way outside the Lemma 4.2 regime
            build_covering_collection(universe_size=3, T=20, r=3,
                                      seed=0, max_tries=5)

    def test_r3_collection(self):
        cc = build_covering_collection(universe_size=40, T=8, r=3, seed=0)
        assert has_r_covering_property(cc.universe_size, cc.sets, 3)
