"""Consistency of the theorem→module→experiment coverage index."""

import importlib

import pytest

from repro.experiments import EXPERIMENTS
from repro.paper import RESULTS, coverage_table


def test_every_listed_module_imports():
    for result in RESULTS:
        for module in result.modules:
            importlib.import_module(module)


def test_every_listed_experiment_is_registered():
    for result in RESULTS:
        for exp_id in result.experiments:
            assert exp_id in EXPERIMENTS, (result.anchor, exp_id)


def test_all_paper_sections_covered():
    sections = {r.section.split("-")[0].split(".")[0] for r in RESULTS}
    # the paper's technical sections are 1-5
    assert {"1", "2", "3", "4", "5"} <= sections


def test_every_core_construction_appears():
    listed = {m for r in RESULTS for m in r.modules}
    for required in (
        "repro.core.mds",
        "repro.core.hamiltonian",
        "repro.core.steiner",
        "repro.core.maxcut",
        "repro.core.bounded_degree",
        "repro.core.approx_maxis",
        "repro.core.kmds",
        "repro.core.steiner_approx",
        "repro.core.restricted_mds",
    ):
        assert required in listed, required


def test_coverage_table_renders():
    table = coverage_table()
    assert "Theorem 2.1" in table
    assert "Theorem 4.8" in table
    assert table.count("verified by") == len(RESULTS)
