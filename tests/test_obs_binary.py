"""Binary trace format (ISSUE 6): golden bytes, roundtrips, fallback
records, crash recovery, streaming aggregation, and the report studio.
"""

from __future__ import annotations

import io
import json
import math
import os
import random

import pytest

from repro.cc.alice_bob import simulate_two_party
from repro.cc.functions import random_input_pairs
from repro.check.fuzz import make_case
from repro.congest.algorithms.basic import FloodMinId
from repro.congest.model import CongestSimulator
from repro.core.mds import MdsFamily
from repro.obs import (
    BinaryTracer,
    CutBitCounter,
    JsonlTracer,
    Metrics,
    MultiTracer,
    RecordingTracer,
    TraceEvent,
    TraceFormatError,
    convert_trace,
    cut_bits_from_events,
    iter_trace,
    read_trace,
    render_report,
    select_run,
    sniff_format,
)
from repro.obs.binary import MAGIC, iter_binary_trace
from tests.conftest import connected_random_graph
from tests.test_obs import run_traced_bfs

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")
GOLDEN_RTB = os.path.join(GOLDEN_DIR, "bfs3.rtb")
GOLDEN_JSONL = os.path.join(GOLDEN_DIR, "bfs3.jsonl")


class TestGoldenBinaryTrace:
    """The checked-in golden pair (tests/golden/bfs3.{jsonl,rtb}) was
    written by one BFS-on-path_graph(3) run through both tracers; any
    encoder change that moves a byte fails here and must regenerate the
    goldens deliberately."""

    def test_formats_decode_to_identical_events(self):
        jsonl_events = read_trace(GOLDEN_JSONL)
        binary_events = read_trace(GOLDEN_RTB)
        assert jsonl_events == binary_events
        assert len(binary_events) == 13
        assert binary_events[0].kind == "run_start"
        assert binary_events[-1].kind == "run_end"

    def test_fresh_run_reproduces_golden_bytes(self):
        sink = io.BytesIO()
        with BinaryTracer(sink) as bt:
            run_traced_bfs(bt)
        with open(GOLDEN_RTB, "rb") as fh:
            assert sink.getvalue() == fh.read()

    def test_reencoding_golden_jsonl_pins_bytes(self):
        sink = io.BytesIO()
        with BinaryTracer(sink) as bt:
            for event in iter_trace(GOLDEN_JSONL):
                bt.emit(event)
        with open(GOLDEN_RTB, "rb") as fh:
            assert sink.getvalue() == fh.read()

    def test_sniff_format(self):
        assert sniff_format(GOLDEN_RTB) == "binary"
        assert sniff_format(GOLDEN_JSONL) == "jsonl"

    def test_binary_is_smaller(self):
        assert os.path.getsize(GOLDEN_RTB) * 2 < os.path.getsize(GOLDEN_JSONL)

    def test_summaries_equal_across_formats(self):
        from_jsonl = Metrics.from_events(iter_trace(GOLDEN_JSONL))
        from_binary = Metrics.from_events(iter_trace(GOLDEN_RTB))
        assert from_jsonl.summary() == from_binary.summary()
        cut_jsonl = cut_bits_from_events(iter_trace(GOLDEN_JSONL), {0})
        cut_binary = cut_bits_from_events(iter_trace(GOLDEN_RTB), {0})
        assert cut_jsonl.cut_bits == cut_binary.cut_bits
        assert cut_jsonl.bits_by_round == cut_binary.bits_by_round

    def test_cut_bits_match_alice_bob_through_binary_file(self, tmp_path):
        """Theorem 1.1 accounting survives the binary encode/decode:
        the cut bits streamed back from disk equal cc/alice_bob.py's
        own count on a set-disjointness instance."""
        fam = MdsFamily(4)
        x, y = random_input_pairs(fam.k_bits, 2, random.Random(0xB17))[0]
        g = fam.build(x, y)
        path = tmp_path / "cut.rtb"
        with BinaryTracer(path) as bt:
            sim = simulate_two_party(g, fam.alice_vertices(), FloodMinId,
                                     tracer=bt)
        probe = CongestSimulator(g)
        alice_uids = {probe.uid_of[v] for v in fam.alice_vertices()}
        from_file = cut_bits_from_events(iter_trace(path), alice_uids)
        assert from_file.cut_bits == sim.cut_bits
        assert from_file.cut_messages == sim.cut_messages
        assert from_file.bits_by_round == sim.cut_bits_by_round


class TestBinaryRoundTrip:
    def test_fuzzed_sim_roundtrip(self, tmp_path):
        g = connected_random_graph(10, 0.4, random.Random(5))
        rec = RecordingTracer()
        path = tmp_path / "flood.rtb"
        with BinaryTracer(path) as bt:
            CongestSimulator(g, tracer=MultiTracer([rec, bt])).run(FloodMinId)
        assert read_trace(path) == rec.events

    def test_local_model_inf_bandwidth(self, tmp_path):
        g = connected_random_graph(6, 0.5, random.Random(7))
        rec = RecordingTracer()
        path = tmp_path / "local.rtb"
        with BinaryTracer(path) as bt:
            sim = CongestSimulator(g, bandwidth=math.inf,
                                   tracer=MultiTracer([rec, bt]))
            sim.run(FloodMinId)
        loaded = read_trace(path)
        assert loaded == rec.events
        assert loaded[0].data["bandwidth"] == math.inf

    def test_fallback_records_roundtrip(self):
        """Events outside the compact layouts survive via the wide /
        generic record fallbacks."""
        events = [
            # non-integral bandwidth stays a float
            TraceEvent("run_start", 0, {"n": 70000, "edges": 5,
                                        "bandwidth": 3.5,
                                        "algorithm": "Custom"}),
            # sender > 2**16 and ok=False need the wide message record
            TraceEvent("message", 0, {"sender": 100000, "receiver": 2,
                                      "bits": 1 << 40, "ok": False}),
            TraceEvent("message", 1, {"sender": 1, "receiver": 2,
                                      "bits": 3, "ok": True}),
            # an extra key forces the generic record
            TraceEvent("message", 2, {"sender": 1, "receiver": 2,
                                      "bits": 3, "ok": True, "tag": "x"}),
            # unknown kinds go generic with an interned kind string
            TraceEvent("custom", 3, {"alpha": [1, 2, 3], "beta": "s"}),
            TraceEvent("halt", 4, {"uid": 7}),
        ]
        sink = io.BytesIO()
        with BinaryTracer(sink) as bt:
            for event in events:
                bt.emit(event)
        assert list(iter_trace(io.BytesIO(sink.getvalue()))) == events

    def test_interning_deduplicates_strings(self):
        sink = io.BytesIO()
        with BinaryTracer(sink) as bt:
            for rnd in range(50):
                bt.emit(TraceEvent("custom", rnd, {"i": rnd}))
        raw = sink.getvalue()
        assert raw.count(b"custom") == 1
        assert len(list(iter_trace(io.BytesIO(raw)))) == 50

    def test_text_mode_file_rejected(self):
        with pytest.raises(TraceFormatError):
            list(iter_binary_trace(io.StringIO("x")))

    def test_unknown_record_code_raises(self):
        frame = bytes([250]) * 4
        raw = MAGIC + len(frame).to_bytes(4, "little") + frame
        with pytest.raises(TraceFormatError):
            list(iter_trace(io.BytesIO(raw)))

    def test_bad_magic_raises(self):
        with pytest.raises(TraceFormatError):
            list(iter_binary_trace(io.BytesIO(b"NOTATRACE")))

    def test_magic_only_file_is_empty(self, tmp_path):
        path = tmp_path / "empty.rtb"
        path.write_bytes(MAGIC)
        assert read_trace(path) == []

    def test_converter_equivalence_both_directions(self, tmp_path):
        jsonl_out = tmp_path / "conv.jsonl"
        binary_out = tmp_path / "conv.rtb"
        convert_trace(GOLDEN_RTB, jsonl_out)
        assert read_trace(jsonl_out) == read_trace(GOLDEN_RTB)
        convert_trace(jsonl_out, binary_out)
        with open(GOLDEN_RTB, "rb") as fh:
            assert binary_out.read_bytes() == fh.read()

    def test_open_tracer_format_inference(self, tmp_path):
        from repro.obs import open_tracer

        with open_tracer(tmp_path / "t.jsonl") as t:
            assert isinstance(t, JsonlTracer)
        with open_tracer(tmp_path / "t.rtb") as t:
            assert isinstance(t, BinaryTracer)
        with pytest.raises(ValueError):
            open_tracer(tmp_path / "t.x", fmt="nope")


class TestCrashRecovery:
    def _two_run_file(self, tmp_path):
        path = tmp_path / "two.rtb"
        bt = BinaryTracer(path)
        run_traced_bfs(bt)
        run_traced_bfs(bt)
        bt.close()
        return path

    def test_truncated_final_frame_recovers_complete_frames(self, tmp_path):
        path = self._two_run_file(tmp_path)
        full = read_trace(path)
        assert len(full) == 26  # two identical 13-event runs
        raw = path.read_bytes()
        truncated = tmp_path / "trunc.rtb"
        # cut into the middle of the second run's frame: everything up
        # to the last complete frame (run 1) must still decode
        truncated.write_bytes(raw[:-5])
        events = read_trace(truncated)
        assert events == full[:13]
        assert events[-1].kind == "run_end"

    def test_truncated_frame_header_yields_nothing(self, tmp_path):
        path = self._two_run_file(tmp_path)
        truncated = tmp_path / "header.rtb"
        truncated.write_bytes(path.read_bytes()[:len(MAGIC) + 2])
        assert read_trace(truncated) == []

    def test_run_end_flush_makes_completed_runs_durable(self, tmp_path):
        """A tracer abandoned mid-run (killed worker) still has every
        completed run on disk, because ``run_end`` seals and flushes."""
        path = tmp_path / "durable.rtb"
        bt = BinaryTracer(path)
        run_traced_bfs(bt)
        # start a second run but never finish or close it
        bt.emit(TraceEvent("run_start", 0, {"n": 1, "edges": 0,
                                            "bandwidth": 8,
                                            "algorithm": "Doomed"}))
        events = read_trace(path)  # file deliberately left unclosed
        assert len(events) == 13
        assert events[-1].kind == "run_end"
        bt.close()

    def test_exit_closes_file_on_exception(self, tmp_path):
        path = tmp_path / "exc.rtb"
        with pytest.raises(RuntimeError):
            with BinaryTracer(path) as bt:
                run_traced_bfs(bt)
                raise RuntimeError("boom")
        assert bt._file.closed
        assert len(read_trace(path)) == 13


class TestStreamingAggregation:
    def _fuzzed_trace(self, tmp_path):
        """A binary trace of a FloodMinId run on a fuzzed check-family
        graph (first connected er case)."""
        index = 0
        while True:
            case = make_case(0, "er", index)
            if case.graph.n >= 2 and case.graph.is_connected():
                break
            index += 1
        path = tmp_path / f"er-{index}.rtb"
        with BinaryTracer(path) as bt:
            CongestSimulator(case.graph, tracer=bt).run(FloodMinId)
        return path

    def test_incremental_consume_equals_from_events(self, tmp_path):
        path = self._fuzzed_trace(tmp_path)
        streamed = Metrics().consume(iter_trace(path))
        materialised = Metrics.from_events(read_trace(path))
        assert streamed.summary() == materialised.summary()
        assert streamed.per_round.keys() == materialised.per_round.keys()
        for rnd in streamed.per_round:
            assert streamed.per_round[rnd] == materialised.per_round[rnd]
        assert streamed.per_edge == materialised.per_edge

    def test_cut_counter_consume_equals_from_events(self, tmp_path):
        path = self._fuzzed_trace(tmp_path)
        uids = {0, 1}
        streamed = CutBitCounter(uids).consume(iter_trace(path))
        materialised = cut_bits_from_events(read_trace(path), uids)
        assert streamed.cut_bits == materialised.cut_bits
        assert streamed.cut_messages == materialised.cut_messages
        assert streamed.bits_by_round == materialised.bits_by_round


class TestRunSelection:
    def _two_run_file(self, tmp_path):
        path = tmp_path / "two.rtb"
        bt = BinaryTracer(path)
        run_traced_bfs(bt)
        run_traced_bfs(bt)
        bt.close()
        return path

    def test_multi_run_report_has_index(self, tmp_path):
        report = render_report(iter_trace(self._two_run_file(tmp_path)))
        assert "trace contains 2 runs" in report
        assert "1: BfsFromRoot (n=3, rounds=3)" in report
        assert "2: BfsFromRoot (n=3, rounds=3)" in report

    def test_run_selection(self, tmp_path):
        path = self._two_run_file(tmp_path)
        report = render_report(iter_trace(path), run=2)
        assert "showing run 2 only" in report
        assert "trace contains" not in report
        # one run's worth of traffic, not two
        assert "messages = 2," in report

    def test_run_out_of_range(self, tmp_path):
        path = self._two_run_file(tmp_path)
        with pytest.raises(ValueError):
            render_report(iter_trace(path), run=5)
        with pytest.raises(ValueError):
            list(select_run([], 0))

    def test_select_run_is_lazy(self):
        base = read_trace(GOLDEN_RTB)

        def poisoned():
            for event in base:
                yield event
            yield TraceEvent("run_start", 0, {"n": 1, "edges": 0,
                                              "bandwidth": 8,
                                              "algorithm": "X"})
            raise AssertionError("select_run read past the requested run")

        assert list(select_run(poisoned(), 1)) == base


class TestStudioCli:
    def test_report_trace_binary(self, capsys):
        from repro.cli import main

        main(["report", "trace", GOLDEN_RTB, "--cut", "0"])
        out = capsys.readouterr().out
        assert "CONGEST trace report" in out
        assert "cut bits" in out

    def test_report_legacy_spelling_binary(self, capsys):
        from repro.cli import main

        main(["report", GOLDEN_RTB])
        assert "BfsFromRoot" in capsys.readouterr().out

    def test_report_trace_run_flag(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "two.rtb"
        bt = BinaryTracer(path)
        run_traced_bfs(bt)
        run_traced_bfs(bt)
        bt.close()
        main(["report", "trace", str(path), "--run", "2"])
        assert "showing run 2 only" in capsys.readouterr().out
        with pytest.raises(SystemExit):
            main(["report", "trace", str(path), "--run", "9"])

    def test_report_bench(self, tmp_path, capsys):
        from repro.cli import main

        history = {
            "bench_fast": [
                {"sha": "aaa", "date": "2026-01-01", "p50_ms": 100.0},
                {"sha": "bbb", "date": "2026-01-02", "p50_ms": 50.0},
            ],
            "bench_slow": [
                {"sha": "aaa", "date": "2026-01-01", "p50_ms": 100.0},
                {"sha": "bbb", "date": "2026-01-02", "p50_ms": 200.0},
            ],
        }
        path = tmp_path / "hist.json"
        path.write_text(json.dumps(history))
        main(["report", "bench", str(path)])
        out = capsys.readouterr().out
        assert "Bench trajectory" in out
        assert "| bench_fast | 50.0ms@bbb | 100.0ms@aaa | -50% |" in out
        assert "improved" in out
        assert "**REGRESSION**" in out
        assert "1 regression(s)" in out

    def test_report_bench_missing(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["report", "bench", str(tmp_path / "nope.json")])

    def test_report_fuzz(self, tmp_path, capsys):
        from repro.cli import main

        report = {
            "seed": 0, "cases": 5, "family": "er", "deep": False,
            "cases_run": 5, "checks_run": 12, "elapsed": 1.5,
            "check_counts": {"ref:matching": 9, "inv:alpha-tau": 3},
            "ok": False, "failures": [],
        }
        failure = {
            "check": "ref:matching", "family": "er", "index": 3, "seed": 0,
            "case": "er-3", "detail": "production=2, reference=3",
            "repro": "python -m repro check --seed 0 --cases 4 --family er",
            "shrunk": {"graph": {"n": 2, "m": 1,
                                 "edges": [{"u": 0, "v": 1}]},
                       "detail": "production=0, reference=1"},
        }
        (tmp_path / "check-report.json").write_text(json.dumps(report))
        (tmp_path / "failure-000.json").write_text(json.dumps(failure))
        main(["report", "fuzz", str(tmp_path)])
        out = capsys.readouterr().out
        assert "**FAIL** (1 failure(s))" in out
        assert "| `ref:matching` | 9 | 1 |" in out
        assert "--seed 0 --cases 4" in out
        assert "shrunk to n=2 m=1" in out

    def test_report_fuzz_missing_dir(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["report", "fuzz", str(tmp_path / "empty")])

    def test_report_convert(self, tmp_path, capsys):
        from repro.cli import main

        dst = tmp_path / "conv.jsonl"
        main(["report", "convert", GOLDEN_RTB, str(dst)])
        assert "wrote" in capsys.readouterr().out
        assert read_trace(dst) == read_trace(GOLDEN_RTB)

    def test_report_unknown_view(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["report", "nonsense", "extra-arg"])

    def test_report_trace_requires_path(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["report", "trace"])
