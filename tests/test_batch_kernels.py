"""Batched decision kernels: protocol edge cases, invalidation, and
batch/per-pair/scratch equivalence on every kernel-bearing family."""

import random

import pytest

from repro.cc.functions import random_input_pairs
from repro.core.family import DeltaBuildMixin, sweep, verify_iff
from repro.core.hamiltonian import (
    HamiltonianCycleFamily,
    HamiltonianPathFamily,
)
from repro.core.kmds import KMdsFamily
from repro.covering.designs import build_covering_collection
from repro.core.maxcut import MaxCutFamily
from repro.core.mds import MdsFamily


def _grid(k_bits):
    return [(tuple(int(b) for b in format(i, f"0{k_bits}b")),
             tuple(int(b) for b in format(j, f"0{k_bits}b")))
            for i in range(1 << k_bits) for j in range(1 << k_bits)]


def _kmds(k=2):
    cc = build_covering_collection(universe_size=16, T=6, r=2, seed=0)
    return KMdsFamily(cc, k=k)


FAMILIES = [
    pytest.param(lambda: MdsFamily(2), id="mds"),
    pytest.param(lambda: MaxCutFamily(2), id="maxcut"),
    pytest.param(lambda: HamiltonianCycleFamily(2), id="ham-cycle"),
    pytest.param(lambda: HamiltonianPathFamily(2), id="ham-path"),
    pytest.param(_kmds, id="kmds"),
]


@pytest.mark.parametrize("make", FAMILIES)
def test_supports_batch(make):
    assert make().supports_batch()


def test_base_family_does_not_support_batch():
    class Plain(DeltaBuildMixin):
        pass

    assert not Plain().supports_batch()
    assert Plain().decide_batch(None, [((0,), (0,))]) is None


@pytest.mark.parametrize("make", FAMILIES)
def test_empty_pair_list(make):
    fam = make()
    assert fam.decide_batch(None, []) == {}


@pytest.mark.parametrize("make", FAMILIES)
def test_single_pair(make):
    fam = make()
    kb = fam.k_bits
    pair = (tuple([1] * kb), tuple([0] * kb))
    out = fam.decide_batch(None, [pair])
    assert set(out) == {pair}
    assert out[pair] == fam.predicate(fam.build(*pair))


@pytest.mark.parametrize("make", FAMILIES)
def test_batch_matches_per_pair_on_promise_violating_pairs(make):
    """The kernel must answer arbitrary dense/asymmetric pairs — not
    just the promise inputs the CC reduction would feed it — and agree
    with the per-pair delta build AND the from-scratch build."""
    fam = make()
    kb = fam.k_bits
    rng = random.Random(0xFEED)
    pairs = [(tuple([0] * kb), tuple([0] * kb)),
             (tuple([1] * kb), tuple([1] * kb)),
             (tuple([1] * kb), tuple([0] * kb))]
    pairs += random_input_pairs(kb, 6, rng)
    # dense pairs stress the delta path hardest
    pairs += [(tuple(int(rng.random() < 0.7) for _ in range(kb)),
               tuple(int(rng.random() < 0.7) for _ in range(kb)))
              for _ in range(4)]
    out = fam.decide_batch(None, pairs)
    assert set(out) == set(pairs)
    for x, y in pairs:
        expect_delta = fam.predicate(fam.build(x, y))
        expect_scratch = fam.predicate(fam.build_scratch(x, y))
        assert out[(x, y)] == expect_delta == expect_scratch, (x, y)


@pytest.mark.parametrize("make", [FAMILIES[0], FAMILIES[1]])
def test_duplicate_pairs_answered_once(make):
    fam = make()
    kb = fam.k_bits
    pair = (tuple([1] * kb), tuple([1] * kb))
    out = fam.decide_batch(None, [pair, pair, pair])
    assert set(out) == {pair}


def test_kernel_state_reused_across_calls():
    fam = MdsFamily(2)
    pairs = _grid(fam.k_bits)[:8]
    fam.decide_batch(None, pairs)
    events = fam.kernel_events()
    assert events["state_misses"] == 1
    fam.decide_batch(None, pairs)
    assert fam.kernel_events()["state_misses"] == 1
    assert fam.kernel_events()["state_hits"] >= 1


def test_kernel_invalidated_on_skeleton_content_change():
    """A kernel warmed on one skeleton must not answer for a different
    one: a content-hash change forces a rebuild (state miss)."""
    fam = MdsFamily(2)
    pairs = _grid(fam.k_bits)[:6]
    baseline = fam.decide_batch(None, pairs)
    misses = fam.kernel_events()["state_misses"]

    mutated = fam.skeleton().copy()
    mutated.add_vertex(("test", "extra-vertex"))
    assert mutated.content_hash() != fam.skeleton().content_hash()
    fam.decide_batch(mutated, [pairs[0]])
    assert fam.kernel_events()["state_misses"] == misses + 1

    # back on the canonical skeleton: rebuilt again, same answers
    again = fam.decide_batch(None, pairs)
    assert again == baseline


@pytest.mark.parametrize("make", [FAMILIES[0], FAMILIES[2]])
def test_sweep_batch_equivalence(make):
    fam = make()
    pairs = _grid(fam.k_bits)
    batched = sweep(make(), pairs, batch=True)
    plain = sweep(make(), pairs, batch=False)
    assert batched.decisions == plain.decisions
    assert batched.batched == batched.solved > 0
    assert plain.batched == 0


def test_sweep_batch_records_solve_timings():
    fam = MdsFamily(2)
    report = sweep(fam, _grid(fam.k_bits)[:12], batch=True)
    assert report.solve_ms is not None
    assert len(report.solve_ms) == report.solved
    assert all(ms >= 0.0 for ms in report.solve_ms)


def test_verify_iff_batch_flag():
    fam = MdsFamily(2)
    pairs = random_input_pairs(fam.k_bits, 12, random.Random(3))
    batched = verify_iff(fam, pairs, negate=True, batch=True)
    plain = verify_iff(MdsFamily(2), pairs, negate=True, batch=False)
    assert (batched.true_instances, batched.false_instances) \
        == (plain.true_instances, plain.false_instances)
    assert batched.checked == plain.checked == len(pairs)
