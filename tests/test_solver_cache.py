"""Solver memoization: canonical hashing, both cache tiers, counters."""

import json
import math
import os

import pytest

from repro.graphs import DiGraph, Graph, GraphError, complete_graph, label_sort_key
from repro.solvers import max_cut, max_flow, max_independent_set, min_dominating_set
from repro.solvers.cache import (
    CACHE,
    SolverCache,
    UncacheableArgument,
    _decode,
    _encode,
    cache_stats,
    cached,
    canonical_repr,
    configure,
    default_cache_dir,
    reset_cache_stats,
)


@pytest.fixture(autouse=True)
def fresh_cache():
    """Each test runs against a clean, enabled, memory-only cache and
    leaves the global cache the same way."""
    CACHE.configure(enabled=True, cache_dir=None)
    CACHE._mem.clear()
    CACHE.reset_stats()
    yield
    CACHE.configure(enabled=True, cache_dir=None)
    CACHE._mem.clear()
    CACHE.reset_stats()


class TestContentHash:
    def test_insertion_order_invariance(self):
        g1 = Graph()
        g1.add_edge(1, 2, weight=3.0)
        g1.add_edge(2, 5)
        g2 = Graph()
        g2.add_edge(2, 5)
        g2.add_edge(2, 1, weight=3.0)
        assert g1.content_hash() == g2.content_hash()

    def test_weight_changes_hash(self):
        g1 = Graph()
        g1.add_edge("a", "b")
        g2 = Graph()
        g2.add_edge("a", "b", weight=2.0)
        assert g1.content_hash() != g2.content_hash()
        g3 = Graph()
        g3.add_edge("a", "b")
        g3.set_vertex_weight("a", 5.0)
        assert g3.content_hash() != g1.content_hash()

    def test_label_type_distinguished(self):
        g1 = Graph()
        g1.add_edge(1, 2)
        g2 = Graph()
        g2.add_edge("1", "2")
        assert g1.content_hash() != g2.content_hash()

    def test_direction_matters(self):
        d1 = DiGraph()
        d1.add_edge("u", "v")
        d2 = DiGraph()
        d2.add_edge("v", "u")
        assert d1.content_hash() != d2.content_hash()
        g = Graph()
        g.add_edge("u", "v")
        assert g.content_hash() != d1.content_hash()

    def test_collision_guard(self):
        class Opaque:
            def __repr__(self):
                return "<opaque>"

        g = Graph()
        g.add_vertex(Opaque())
        g.add_vertex(Opaque())
        with pytest.raises(GraphError):
            g.content_hash()


class TestEdgeKeyCollisionGuard:
    def test_distinct_labels_same_repr_rejected(self):
        class Opaque:
            def __repr__(self):
                return "<opaque>"

        a, b = Opaque(), Opaque()
        with pytest.raises(GraphError):
            Graph._key(a, b)
        g = Graph()
        with pytest.raises(GraphError):
            g.add_edge(a, b, weight=1.0)

    def test_same_repr_different_type_ok(self):
        # the type-name prefix disambiguates labels whose repr coincides
        class A:
            def __repr__(self):
                return "<same>"

        class B:
            def __repr__(self):
                return "<same>"

        g = Graph()
        g.add_edge(A(), B(), weight=2.0)
        assert g.m == 1
        assert g.content_hash()

    def test_sort_key_is_type_then_repr(self):
        assert label_sort_key(10) == ("int", "10")
        assert label_sort_key("a") == ("str", "'a'")
        # documented quirk: repr order, not numeric order
        assert label_sort_key(10) < label_sort_key(2)


class TestCanonicalRepr:
    def test_set_order_independence(self):
        assert canonical_repr({3, 1, 2}) == canonical_repr({2, 3, 1})
        assert canonical_repr({"b", "a"}) == canonical_repr({"a", "b"})

    def test_dict_order_independence(self):
        assert canonical_repr({"x": 1, "y": 2}) == canonical_repr(
            {"y": 2, "x": 1})

    def test_type_tags(self):
        assert canonical_repr(1) != canonical_repr(True)
        assert canonical_repr(1) != canonical_repr("1")
        assert canonical_repr([1]) != canonical_repr((1,))

    def test_iterator_uncacheable(self):
        with pytest.raises(UncacheableArgument):
            canonical_repr(iter([1, 2]))


class TestDiskEncoding:
    @pytest.mark.parametrize("value", [
        None, True, 0, -3, 1.5, float("inf"), "s",
        (1.0, [0, 2, 5]),
        {("a", 1): 2.0, ("b", 2): 3.0},
        {1, 2, 3}, frozenset({("x", "y")}),
        (12.5, {("u", "v"): 1.0}),
    ])
    def test_roundtrip_exact(self, value):
        decoded = _decode(json.loads(json.dumps(_encode(value))))
        assert decoded == value
        assert type(decoded) is type(value)

    def test_unencodable_rejected(self):
        with pytest.raises(ValueError):
            _encode(object())


class TestCachedDecorator:
    def test_hit_and_miss_counters(self):
        calls = []

        @cached(name="test.fn")
        def fn(graph, k=1):
            calls.append(k)
            return [k, graph.n]

        g = complete_graph(4)
        assert fn(g) == [1, 4]
        assert fn(g) == [1, 4]
        assert fn(g, k=2) == [2, 4]
        assert calls == [1, 2]
        stats = cache_stats()["test.fn"]
        assert stats.hits == 1 and stats.misses == 2

    def test_hits_return_independent_copies(self):
        @cached(name="test.copy")
        def fn(graph):
            return [1, 2, 3]

        g = complete_graph(3)
        first = fn(g)
        first.append(99)
        assert fn(g) == [1, 2, 3]

    def test_disabled_cache_bypasses(self):
        calls = []

        @cached(name="test.off")
        def fn(graph):
            calls.append(1)
            return graph.n

        configure(enabled=False)
        g = complete_graph(3)
        fn(g), fn(g)
        assert len(calls) == 2
        assert "test.off" not in cache_stats()

    def test_equivalent_graphs_share_entry(self):
        @cached(name="test.shared")
        def fn(graph):
            return graph.m

        g1 = Graph()
        g1.add_edge(1, 2)
        g1.add_edge(2, 3)
        g2 = Graph()
        g2.add_edge(2, 3)
        g2.add_edge(1, 2)
        fn(g1), fn(g2)
        stats = cache_stats()["test.shared"]
        assert stats.hits == 1 and stats.misses == 1

    def test_disk_tier_survives_new_process_cache(self, tmp_path):
        configure(cache_dir=str(tmp_path))

        g = complete_graph(6)
        value, side = max_cut(g)
        files = list(tmp_path.glob("*.json"))
        assert files, "disk tier wrote nothing"
        # a brand-new cache (fresh process stand-in) must hit the disk
        CACHE._mem.clear()
        reset_cache_stats()
        value2, side2 = max_cut(g)
        assert (value2, side2) == (value, side)
        stats = cache_stats()["maxcut.max_cut"]
        assert stats.hits == 1 and stats.disk_hits == 1

    def test_disk_entry_records_key_material(self, tmp_path):
        configure(cache_dir=str(tmp_path))
        max_cut(complete_graph(4))
        payload = json.loads(next(tmp_path.glob("*.json")).read_text())
        assert payload["solver"] == "maxcut.max_cut"
        assert "Graph#" in payload["key"]

    def test_corrupt_disk_entry_is_a_miss(self, tmp_path):
        configure(cache_dir=str(tmp_path))
        g = complete_graph(5)
        expected = max_cut(g)
        for path in tmp_path.glob("*.json"):
            path.write_text("{not json")
        CACHE._mem.clear()
        assert max_cut(g) == expected

    def test_default_cache_dir_respects_xdg(self, monkeypatch):
        monkeypatch.setenv("XDG_CACHE_HOME", "/tmp/xdg-test")
        assert default_cache_dir() == os.path.join("/tmp/xdg-test", "repro")


class TestSolverResultsUnchanged:
    """Cached solvers must return exactly what the uncached ones do."""

    def test_max_cut_matches_uncached(self):
        g = complete_graph(6)
        g.set_edge_weight(0, 1, 4.0)
        cached_result = max_cut(g)
        configure(enabled=False)
        assert max_cut(g) == cached_result

    def test_mis_and_mds_roundtrip(self):
        g = Graph()
        for i in range(5):
            g.add_edge(i, (i + 1) % 5)
        mis1 = max_independent_set(g)
        mds1 = min_dominating_set(g)
        assert max_independent_set(g) == mis1
        assert min_dominating_set(g) == mds1
        configure(enabled=False)
        assert max_independent_set(g) == mis1
        assert min_dominating_set(g) == mds1

    def test_max_flow_dict_keys_survive_disk(self, tmp_path):
        configure(cache_dir=str(tmp_path))
        g = Graph()
        g.add_edge("s", "a", weight=2.0)
        g.add_edge("a", "t", weight=1.0)
        g.add_edge("s", "t", weight=1.0)
        expected = max_flow(g, "s", "t")
        CACHE._mem.clear()
        value, flow = max_flow(g, "s", "t")
        assert value == expected[0]
        assert flow == expected[1]
        assert all(isinstance(arc, tuple) for arc in flow)


class TestStaleTmpCleanup:
    """Crashed writers leave ``mkstemp`` leftovers; ``clear()`` and the
    startup sweep must reap them (regression: ``clear()`` used to match
    only ``*.json`` so ``*.tmp`` orphans accumulated forever)."""

    @staticmethod
    def _make_tmp(directory, name, age_s=0.0):
        path = os.path.join(str(directory), name)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write('{"solver": "killed-mid-w')
        if age_s:
            old = os.stat(path).st_mtime - age_s
            os.utime(path, (old, old))
        return path

    def test_clear_removes_orphaned_tmp_files(self, tmp_path):
        configure(cache_dir=str(tmp_path))
        g = complete_graph(4)
        max_cut(g)
        orphan = self._make_tmp(tmp_path, "tmpabc123.tmp")
        assert list(tmp_path.glob("*.json"))
        CACHE.clear()
        assert not os.path.exists(orphan)
        assert not list(tmp_path.glob("*.json"))

    def test_startup_sweep_reaps_stale_keeps_fresh(self, tmp_path):
        stale = self._make_tmp(tmp_path, "tmpstale.tmp", age_s=7200.0)
        fresh = self._make_tmp(tmp_path, "tmpfresh.tmp")
        configure(cache_dir=str(tmp_path))
        # a fresh tmp may belong to a live concurrent writer: kept
        assert not os.path.exists(stale)
        assert os.path.exists(fresh)

    def test_constructor_sweeps_stale_tmp(self, tmp_path):
        stale = self._make_tmp(tmp_path, "tmpstale.tmp", age_s=7200.0)
        SolverCache(cache_dir=str(tmp_path))
        assert not os.path.exists(stale)

    def test_sweep_stale_tmp_missing_dir_is_noop(self, tmp_path):
        from repro.solvers.cache import sweep_stale_tmp

        assert sweep_stale_tmp(str(tmp_path / "nope")) == 0
