"""Hypothesis property tests on the core data structures and invariants."""

import math

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.codes import PrimeField, ReedSolomonCode, hamming_distance
from repro.codes.gf import next_prime
from repro.congest.model import message_bits
from repro.graphs import Graph
from repro.solvers import (
    cut_weight,
    independence_number,
    is_dominating_set,
    is_independent_set,
    is_vertex_cover,
    max_cut_value,
    max_independent_set,
    min_dominating_set,
    min_vertex_cover,
)

# deterministic seeds, modest example counts: the solvers are exponential
FAST = settings(max_examples=25, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])


@st.composite
def small_graphs(draw, max_n=9):
    n = draw(st.integers(min_value=1, max_value=max_n))
    g = Graph()
    g.add_vertices(range(n))
    for u in range(n):
        for v in range(u + 1, n):
            if draw(st.booleans()):
                g.add_edge(u, v)
    return g


@FAST
@given(small_graphs())
def test_mis_is_independent_and_maximal(g):
    mis = max_independent_set(g)
    assert is_independent_set(g, mis)
    mis_set = set(mis)
    # maximality: no vertex can be added
    for v in g.vertices():
        if v not in mis_set:
            assert g.neighbors(v) & mis_set or not mis_set and g.n == 0


@FAST
@given(small_graphs())
def test_gallai_identity(g):
    """α(G) + τ(G) = n (Gallai)."""
    assert len(max_independent_set(g)) + len(min_vertex_cover(g)) == g.n


@FAST
@given(small_graphs())
def test_independence_number_agrees_with_bitmask_solver(g):
    assert independence_number(g) == len(max_independent_set(g))


@FAST
@given(small_graphs())
def test_mds_dominates_and_is_minimal(g):
    ds = min_dominating_set(g)
    assert is_dominating_set(g, ds)
    # minimality: dropping any single vertex breaks domination
    for v in ds:
        rest = [u for u in ds if u != v]
        assert not is_dominating_set(g, rest)


@FAST
@given(small_graphs())
def test_mds_at_most_mvc_plus_isolated(g):
    """Every vertex cover of a graph without isolated vertices dominates."""
    isolated = [v for v in g.vertices() if g.degree(v) == 0]
    cover = min_vertex_cover(g)
    if not isolated and g.m > 0:
        assert len(min_dominating_set(g)) <= len(cover)


@FAST
@given(small_graphs(max_n=8))
def test_max_cut_bounds(g):
    value = max_cut_value(g)
    assert 0 <= value <= g.m
    if g.m:
        assert value >= g.m / 2  # random assignment bound
    # complement side gives the same cut
    __, side = __import__("repro.solvers.maxcut", fromlist=["max_cut"]).max_cut(g)
    other = [v for v in g.vertices() if v not in set(side)]
    assert cut_weight(g, side) == cut_weight(g, other) == value


@FAST
@given(small_graphs())
def test_bfs_distance_triangle_inequality(g):
    for src in list(g.vertices())[:3]:
        dist = g.bfs_distances(src)
        for u, v in g.edges():
            if u in dist and v in dist:
                assert abs(dist[u] - dist[v]) <= 1


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=2, max_value=40),
       st.integers(min_value=1, max_value=4))
def test_reed_solomon_distance_property(n, k):
    if k > n:
        k = n
    q = next_prime(n + 1)
    rs = ReedSolomonCode(PrimeField(q), n=n, k=k)
    # sample codeword pairs: distance ≥ n − k + 1
    words = [rs.encode_int(i) for i in range(min(rs.size, 12))]
    for i in range(len(words)):
        for j in range(i + 1, len(words)):
            assert hamming_distance(words[i], words[j]) >= rs.distance


@settings(max_examples=50, deadline=None)
@given(st.integers(min_value=0, max_value=10 ** 9))
def test_message_bits_monotone_in_magnitude(x):
    assert message_bits(x) >= 1
    assert message_bits(x * 2 + 1) >= message_bits(x)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=255), max_size=6))
def test_message_bits_container_superadditive(xs):
    assert message_bits(tuple(xs)) >= sum(message_bits(x) for x in xs)


@FAST
@given(small_graphs(max_n=8), st.integers(min_value=1, max_value=3))
def test_k_domination_monotone_in_k(g, k):
    from tests.conftest import brute_force_mds_size

    assert brute_force_mds_size(g, k=k) >= brute_force_mds_size(g, k=k + 1)


@settings(max_examples=20, deadline=None)
@given(st.tuples(*[st.integers(0, 1)] * 4), st.tuples(*[st.integers(0, 1)] * 4))
def test_mds_family_lemma_holds_for_all_inputs(x, y):
    """Lemma 2.1 at k = 2 under arbitrary (hypothesis-driven) inputs."""
    from repro.cc.functions import disjointness
    from repro.core.mds import MdsFamily

    fam = MdsFamily(2)
    assert fam.predicate(fam.build(x, y)) == (not disjointness(x, y))


@settings(max_examples=20, deadline=None)
@given(st.tuples(*[st.integers(0, 1)] * 4), st.tuples(*[st.integers(0, 1)] * 4))
def test_mvc_family_lemma_holds_for_all_inputs(x, y):
    """The base family's α gap at k = 2 under arbitrary inputs."""
    from repro.cc.functions import disjointness
    from repro.core.mvc import MvcMaxISFamily

    fam = MvcMaxISFamily(2)
    alpha = len(max_independent_set(fam.build(x, y)))
    if disjointness(x, y):
        assert alpha <= fam.alpha_no
    else:
        assert alpha == fam.alpha_yes
