"""Graph wire-format round-trip suite (``to_bytes``/``from_bytes``/
``__reduce__``).

Pins the serialization contracts the fan-out fabric relies on:
round-trip ``content_hash`` equality, weight preservation (including
``math.inf`` and weight-only-mutated graphs), label types beyond
``str``/``int``, blob size independent of warmed cache state, and clean
:class:`GraphError` failures on corrupt or truncated frames.
"""

import math
import pickle
import random

import pytest

from repro.graphs import (
    DiGraph,
    Graph,
    GraphError,
    graph_from_bytes,
    graph_to_bytes,
    random_graph,
)


class CustomLabel:
    """A vertex label the compact stream can't encode (pickle path)."""

    def __init__(self, tag):
        self.tag = tag

    def __hash__(self):
        return hash(self.tag)

    def __eq__(self, other):
        return isinstance(other, CustomLabel) and other.tag == self.tag

    def __lt__(self, other):
        return self.tag < other.tag

    def __repr__(self):
        # stable repr: content_hash folds label reprs in, so the
        # default address-bearing repr would never round-trip
        return f"CustomLabel({self.tag!r})"


class TaggedGraph(Graph):
    """Graph subclass with extra state (exercises the pickle slow path)."""

    def __init__(self):
        super().__init__()
        self.tag = "kept"


def _assert_roundtrip(g):
    clone = graph_from_bytes(g.to_bytes())
    assert type(clone) is type(g)
    assert clone.content_hash() == g.content_hash()
    assert sorted(map(repr, clone.vertices())) == \
        sorted(map(repr, g.vertices()))
    assert clone.edge_weights() == g.edge_weights()
    return clone


def test_roundtrip_undirected_random():
    g = random_graph(24, 0.3, random.Random(5))
    _assert_roundtrip(g)


def test_roundtrip_directed():
    g = DiGraph()
    for v in range(6):
        g.add_vertex(v)
    g.add_edge(0, 1)
    g.add_edge(1, 2, weight=2.5)
    g.add_edge(5, 0)
    _assert_roundtrip(g)


def test_roundtrip_empty_and_isolated():
    _assert_roundtrip(Graph())
    g = Graph()
    g.add_vertex("lonely")
    clone = _assert_roundtrip(g)
    assert list(clone.vertices()) == ["lonely"]


def test_pickle_uses_wire_format():
    g = random_graph(12, 0.4, random.Random(2))
    clone = pickle.loads(pickle.dumps(g))
    assert clone.content_hash() == g.content_hash()


def test_weights_preserved_including_inf():
    g = Graph()
    g.add_edge("a", "b", weight=math.inf)
    g.add_edge("b", "c", weight=0.0)
    g.add_edge("c", "a", weight=-7.25)
    g.add_vertex("d", weight=math.inf)
    g.set_vertex_weight("a", 3.5)
    clone = _assert_roundtrip(g)
    assert clone.edge_weight("a", "b") == math.inf
    assert clone.edge_weight("c", "a") == -7.25
    assert clone.vertex_weight("d") == math.inf
    assert clone.vertex_weight("a") == 3.5


def test_weight_only_mutated_graph_roundtrips():
    # a graph whose weights were rewritten after construction (the
    # apply_inputs pattern) must serialize its *current* weights
    g = Graph()
    g.add_edge(0, 1, weight=1.0)
    g.add_edge(1, 2, weight=1.0)
    g.content_hash()  # warm caches before the mutation
    g.set_edge_weight(0, 1, 42.0)
    clone = _assert_roundtrip(g)
    assert clone.edge_weight(0, 1) == 42.0


@pytest.mark.parametrize("labels", [
    [("alice", 3), ("bob", 4), ("alice", 5)],          # tuples
    [b"\x00raw", b"", b"bytes"],                        # bytes
    [None, True, False],                                # singletons
    [1.5, -0.0, 2.25],                                  # floats
    [(("nested",), 1), ((2,), (3, "x"))],               # nested tuples
    [1 << 80, -(1 << 90), 0],                           # bigint fallback
])
def test_label_types_beyond_str_int(labels):
    g = Graph()
    for v in labels:
        g.add_vertex(v)
    g.add_edge(labels[0], labels[1])
    clone = _assert_roundtrip(g)
    assert set(map(repr, clone.vertices())) == set(map(repr, labels))


def test_unencodable_labels_fall_back_to_pickle():
    g = Graph()
    a, b = CustomLabel("a"), CustomLabel("b")
    g.add_edge(a, b)
    clone = graph_from_bytes(g.to_bytes())
    assert clone.content_hash() == g.content_hash()
    assert {v.tag for v in clone.vertices()} == {"a", "b"}


def test_blob_independent_of_warmed_state():
    # caches must never be serialized: however warmed the graph is, the
    # frame is byte-identical
    g = random_graph(20, 0.3, random.Random(9))
    cold = g.to_bytes()
    g.content_hash()
    g.edges()
    g.edge_weights()
    g.csr()
    g.sorted_vertices()
    warmed = g.to_bytes()
    assert warmed == cold
    # and a round-tripped clone re-serializes to the same frame
    assert graph_from_bytes(cold).to_bytes() == cold


def test_reduce_preserves_subclass_state():
    g = TaggedGraph()
    g.add_edge(1, 2)
    clone = pickle.loads(pickle.dumps(g))
    assert isinstance(clone, TaggedGraph)
    assert clone.tag == "kept"
    assert clone.content_hash() == g.content_hash()


def test_bad_magic_raises_graph_error():
    with pytest.raises(GraphError):
        graph_from_bytes(b"NOTAGRAPHFRAME--------------")


def test_unsupported_version_raises_graph_error():
    blob = bytearray(random_graph(6, 0.5, random.Random(1)).to_bytes())
    blob[7] = 0xEE  # version byte follows the 7-byte magic
    with pytest.raises(GraphError):
        graph_from_bytes(bytes(blob))


def test_truncated_frame_raises_graph_error():
    blob = random_graph(10, 0.4, random.Random(3)).to_bytes()
    for cut in (0, 5, len(blob) // 2, len(blob) - 1):
        with pytest.raises(GraphError):
            graph_from_bytes(blob[:cut])


def test_corrupt_payload_raises_graph_error():
    blob = bytearray(random_graph(10, 0.4, random.Random(4)).to_bytes())
    blob[len(blob) // 2] ^= 0xFF
    with pytest.raises(GraphError):
        graph_from_bytes(bytes(blob))


def test_wire_roundtrip_of_family_skeleton():
    # the exact broadcast path of the warm pool: warmed skeleton out,
    # rebuilt skeleton in, equal content hash
    from repro.core.hamiltonian import HamiltonianCycleFamily

    fam = HamiltonianCycleFamily(2)
    fam.skeleton()
    skel = fam._skeleton_store
    clone = graph_from_bytes(skel.to_bytes())
    assert clone.content_hash() == skel.content_hash()
