"""Property tests: the fast and vectorized CONGEST engines are
observably identical to the reference loop.

The heavy lifting lives in :func:`repro.check.engine_check.
check_engine_equivalence` (also registered in ``repro check``); here it
is driven over the seeded fuzz families, plus direct assertions on the
corners the ISSUE calls out — counter equality and the
``BandwidthExceeded`` / non-neighbor ``ValueError`` partial-counter
contracts on every engine, traced and untraced.
"""

import pytest

from repro.check.engine_check import check_engine_equivalence
from repro.check.fuzz import FAMILIES, make_case
from repro.congest.model import (
    ENGINES,
    BandwidthExceeded,
    CongestSimulator,
    NodeAlgorithm,
    cached_message_bits,
    configure_engine,
    default_engine,
    message_bits,
)
from repro.graphs import Graph, path_graph, random_graph

SEED = 0xEE

CANDIDATES = ("fast", "vectorized")


@pytest.mark.parametrize("family", FAMILIES)
@pytest.mark.parametrize("index", range(3))
def test_engines_agree_on_fuzz_families(family, index):
    case = make_case(SEED, family, index)
    if case.graph.n < 1 or case.graph.n > 32:
        pytest.skip("outside the equivalence check's size envelope")
    assert check_engine_equivalence(case.graph) is None


class _Overflow(NodeAlgorithm):
    """Floods uids once, then the max-uid node sends an oversized string."""

    def on_start(self, ctx):
        return {w: ctx.uid for w in ctx.neighbors}

    def on_round(self, ctx, messages):
        if ctx.uid == ctx.n - 1 and ctx.neighbors:
            return {ctx.neighbors[0]: "x" * 4096}
        ctx.halt(None)
        return {}


class _NonNeighbor(NodeAlgorithm):
    """Floods uids once, then the min-uid node sends to a vertex it has
    no edge to (uid n-1 is never a neighbor of uid 0 on a long path)."""

    def on_start(self, ctx):
        return {w: ctx.uid for w in ctx.neighbors}

    def on_round(self, ctx, messages):
        if ctx.uid == 0:
            return {w: 1 for w in ctx.neighbors} | {ctx.n - 1: 1}
        ctx.halt(None)
        return {}


def _run_counters(graph, engine, algorithm=_Overflow,
                  error=BandwidthExceeded, traced=False):
    from repro.obs import NullTracer, RecordingTracer

    tracer = RecordingTracer() if traced else NullTracer()
    sim = CongestSimulator(graph, bandwidth_factor=40, tracer=tracer)
    with pytest.raises(error):
        sim.run(algorithm, engine=engine)
    return (sim.rounds, sim.total_messages, sim.total_bits,
            sim.max_message_bits)


class TestBandwidthPartialCounters:
    @pytest.mark.parametrize("engine", CANDIDATES)
    @pytest.mark.parametrize("traced", (False, True))
    def test_partial_counters_identical_across_engines(self, engine, traced):
        g = path_graph(5)
        assert _run_counters(g, engine, traced=traced) == \
            _run_counters(g, "reference", traced=traced)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_partial_counters_include_offending_message(self, engine):
        g = path_graph(3)
        rounds, messages, bits, max_bits = _run_counters(g, engine)
        # round 0 floods 4 uid messages; round 1 checks the oversized
        # one (counted before the bandwidth check raises)
        assert rounds == 1
        assert messages == 5
        assert max_bits == 8 * 4096
        assert bits > 8 * 4096

    @pytest.mark.parametrize("engine", CANDIDATES)
    @pytest.mark.parametrize("traced", (False, True))
    def test_non_neighbor_counters_identical(self, engine, traced):
        g = path_graph(6)
        assert (_run_counters(g, engine, _NonNeighbor, ValueError,
                              traced=traced) ==
                _run_counters(g, "reference", _NonNeighbor, ValueError,
                              traced=traced))

    @pytest.mark.parametrize("engine", ENGINES)
    def test_non_neighbor_counters_exclude_offender(self, engine):
        g = path_graph(6)
        rounds, messages, bits, max_bits = _run_counters(
            g, engine, _NonNeighbor, ValueError)
        # round 0 floods 10 uid messages; in round 1 uid 0's batch sends
        # to its one real neighbor (counted) before the non-neighbor
        # send raises (not counted)
        assert rounds == 1
        assert messages == 11

    def test_vectorized_numpy_fallback_counters(self, monkeypatch):
        from repro.congest import model

        g = path_graph(5)
        expected = _run_counters(g, "reference")
        monkeypatch.setattr(model, "_np", None)
        assert _run_counters(g, "vectorized") == expected


class TestEngineApi:
    def test_unknown_engine_rejected(self):
        sim = CongestSimulator(path_graph(3))
        with pytest.raises(ValueError):
            sim.run(_Overflow, engine="turbo")

    def test_configure_engine_sets_run_default(self):
        from repro.congest.algorithms.basic import FloodMinId

        assert default_engine() == "fast"
        previous = configure_engine("vectorized")
        try:
            assert previous == "fast"
            assert default_engine() == "vectorized"
            sim = CongestSimulator(path_graph(4))
            out = sim.run(FloodMinId)  # engine=None -> module default
            assert out == {v: 0 for v in range(4)}
        finally:
            configure_engine(previous)
        assert default_engine() == "fast"

    def test_configure_engine_rejects_unknown(self):
        with pytest.raises(ValueError):
            configure_engine("turbo")
        assert default_engine() == "fast"

    @pytest.mark.parametrize("engine", CANDIDATES)
    def test_counters_match_on_normal_run(self, engine):
        import random

        from repro.congest.algorithms.basic import FloodMinId

        g = random_graph(12, 0.3, random.Random(3))
        cand = CongestSimulator(g)
        ref = CongestSimulator(g)
        out_cand = cand.run(FloodMinId, engine=engine)
        out_ref = ref.run(FloodMinId, engine="reference")
        assert out_cand == out_ref
        assert (cand.rounds, cand.total_messages, cand.total_bits,
                cand.max_message_bits) == \
               (ref.rounds, ref.total_messages, ref.total_bits,
                ref.max_message_bits)


class TestMessageBitsCache:
    @pytest.mark.parametrize("payload", [
        None, True, False, 0, 1, -17, 2 ** 40, 1.5, "abc", b"\x00\x01",
        (), (1, 2, 3), (0, -5), (1, "a"), (True, 2), ((1, 2), 3),
        [1, 2], {1: "x"}, frozenset({1, 2}),
    ])
    def test_cached_matches_uncached(self, payload):
        assert cached_message_bits(payload) == message_bits(payload)

    def test_lookalike_payloads_not_conflated(self):
        # these pairs compare equal but have different bit costs; the
        # cache keying must keep them apart (or uncached)
        for a, b in [(1, True), (1, 1.0), ((1, 2), (True, 2))]:
            assert cached_message_bits(a) == message_bits(a)
            assert cached_message_bits(b) == message_bits(b)
