"""Property tests: the fast CONGEST engine is observably identical to
the reference loop.

The heavy lifting lives in :func:`repro.check.engine_check.
check_engine_equivalence` (also registered in ``repro check``); here it
is driven over the seeded fuzz families, plus direct assertions on the
corners the ISSUE calls out — counter equality and the
``BandwidthExceeded`` partial-counter contract.
"""

import pytest

from repro.check.engine_check import check_engine_equivalence
from repro.check.fuzz import FAMILIES, make_case
from repro.congest.model import (
    BandwidthExceeded,
    CongestSimulator,
    NodeAlgorithm,
    cached_message_bits,
    message_bits,
)
from repro.graphs import Graph, path_graph, random_graph

SEED = 0xEE


@pytest.mark.parametrize("family", FAMILIES)
@pytest.mark.parametrize("index", range(3))
def test_engines_agree_on_fuzz_families(family, index):
    case = make_case(SEED, family, index)
    if case.graph.n < 1 or case.graph.n > 32:
        pytest.skip("outside the equivalence check's size envelope")
    assert check_engine_equivalence(case.graph) is None


class _Overflow(NodeAlgorithm):
    """Floods uids once, then the max-uid node sends an oversized string."""

    def on_start(self, ctx):
        return {w: ctx.uid for w in ctx.neighbors}

    def on_round(self, ctx, messages):
        if ctx.uid == ctx.n - 1 and ctx.neighbors:
            return {ctx.neighbors[0]: "x" * 4096}
        ctx.halt(None)
        return {}


def _run_counters(graph, engine):
    sim = CongestSimulator(graph, bandwidth_factor=40)
    with pytest.raises(BandwidthExceeded):
        sim.run(_Overflow, engine=engine)
    return (sim.rounds, sim.total_messages, sim.total_bits,
            sim.max_message_bits)


class TestBandwidthPartialCounters:
    def test_partial_counters_identical_across_engines(self):
        g = path_graph(5)
        assert _run_counters(g, "fast") == _run_counters(g, "reference")

    def test_partial_counters_include_offending_message(self):
        g = path_graph(3)
        rounds, messages, bits, max_bits = _run_counters(g, "fast")
        # round 0 floods 4 uid messages; round 1 checks the oversized
        # one (counted before the bandwidth check raises)
        assert rounds == 1
        assert messages == 5
        assert max_bits == 8 * 4096
        assert bits > 8 * 4096


class TestEngineApi:
    def test_unknown_engine_rejected(self):
        sim = CongestSimulator(path_graph(3))
        with pytest.raises(ValueError):
            sim.run(_Overflow, engine="turbo")

    def test_counters_match_on_normal_run(self):
        import random

        from repro.congest.algorithms.basic import FloodMinId

        g = random_graph(12, 0.3, random.Random(3))
        fast = CongestSimulator(g)
        ref = CongestSimulator(g)
        out_fast = fast.run(FloodMinId, engine="fast")
        out_ref = ref.run(FloodMinId, engine="reference")
        assert out_fast == out_ref
        assert (fast.rounds, fast.total_messages, fast.total_bits,
                fast.max_message_bits) == \
               (ref.rounds, ref.total_messages, ref.total_bits,
                ref.max_message_bits)


class TestMessageBitsCache:
    @pytest.mark.parametrize("payload", [
        None, True, False, 0, 1, -17, 2 ** 40, 1.5, "abc", b"\x00\x01",
        (), (1, 2, 3), (0, -5), (1, "a"), (True, 2), ((1, 2), 3),
        [1, 2], {1: "x"}, frozenset({1, 2}),
    ])
    def test_cached_matches_uncached(self, payload):
        assert cached_message_bits(payload) == message_bits(payload)

    def test_lookalike_payloads_not_conflated(self):
        # these pairs compare equal but have different bit costs; the
        # cache keying must keep them apart (or uncached)
        for a, b in [(1, True), (1, 1.0), ((1, 2), (True, 2))]:
            assert cached_message_bits(a) == message_bits(a)
            assert cached_message_bits(b) == message_bits(b)
