"""Parallel experiment runner: determinism, crash isolation, timeouts."""

import os
import time

import pytest

from repro.experiments import (
    EXPERIMENTS,
    ExperimentRecord,
    records_equivalent,
    run_all,
    run_parallel,
    strip_wallclock,
)

# a cheap but representative slice of the registry
SAMPLE_IDS = [
    "E-F1-T2.1-mds",
    "E-base-mvc",
    "E-T2.5-two-ecss",
    "E-T1.1-simulation",
    "E-congest-local-separation",
]


@pytest.fixture
def scratch_experiments():
    """Register throwaway experiments; always unregister them after."""
    registered = []

    def register(experiment_id, fn):
        EXPERIMENTS[experiment_id] = fn
        registered.append(experiment_id)

    yield register
    for experiment_id in registered:
        EXPERIMENTS.pop(experiment_id, None)


def _ok_experiment(quick=True):
    return ExperimentRecord(experiment_id="E-test-ok", paper_claim="claim",
                            measured={"x": 1})


def _crash_experiment(quick=True):
    os._exit(17)  # hard death: bypasses the worker's exception handler


def _raise_experiment(quick=True):
    raise ValueError("injected failure")


def _sleep_experiment(quick=True):
    time.sleep(30)
    return ExperimentRecord(experiment_id="E-test-sleep", paper_claim="slow")


class TestDeterminism:
    def test_parallel_matches_serial(self):
        serial = run_all(quick=True, only=SAMPLE_IDS)
        parallel = run_all(quick=True, only=SAMPLE_IDS, jobs=2)
        assert [r.experiment_id for r in parallel] == SAMPLE_IDS
        for a, b in zip(serial, parallel):
            assert records_equivalent(a, b), (a, b)

    def test_profile_fields_are_the_only_tolerated_difference(self):
        serial = run_all(quick=True, only=SAMPLE_IDS[:2], profile=True)
        parallel = run_all(quick=True, only=SAMPLE_IDS[:2], profile=True,
                           jobs=2)
        for a, b in zip(serial, parallel):
            assert "solver_profile" in a.measured
            assert "solver_cache" in a.measured
            assert records_equivalent(a, b)
            assert "solver_profile" not in strip_wallclock(a).measured

    def test_unknown_id_raises_before_spawning(self):
        with pytest.raises(KeyError):
            run_parallel(["E-nonexistent"], jobs=2)

    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError):
            run_parallel(SAMPLE_IDS[:1], jobs=0)


class TestCrashIsolation:
    def test_worker_exception_becomes_fail_record(self, scratch_experiments):
        scratch_experiments("E-test-raise", _raise_experiment)
        scratch_experiments("E-test-ok", _ok_experiment)
        records = run_parallel(["E-test-raise", "E-test-ok"], jobs=2)
        assert [r.experiment_id for r in records] == [
            "E-test-raise", "E-test-ok"]
        assert not records[0].passed
        assert "EXCEPTION" in records[0].notes
        assert "injected failure" in records[0].notes
        assert records[1].passed

    def test_dead_worker_does_not_kill_the_batch(self, scratch_experiments):
        scratch_experiments("E-test-crash", _crash_experiment)
        scratch_experiments("E-test-ok", _ok_experiment)
        records = run_parallel(["E-test-ok", "E-test-crash"], jobs=2,
                               retries=1)
        by_id = {r.experiment_id: r for r in records}
        assert by_id["E-test-ok"].passed
        crash = by_id["E-test-crash"]
        assert not crash.passed
        assert "CRASH" in crash.notes

    def test_innocent_corunners_survive_a_crash(self, scratch_experiments):
        scratch_experiments("E-test-crash", _crash_experiment)
        ids = ["E-test-crash"] + SAMPLE_IDS[:3]
        records = run_parallel(ids, jobs=2, retries=1)
        assert [r.experiment_id for r in records] == ids
        assert not records[0].passed
        serial = run_all(quick=True, only=SAMPLE_IDS[:3])
        for expected, got in zip(serial, records[1:]):
            assert records_equivalent(expected, got), (expected, got)

    def test_timeout_fails_only_the_slow_experiment(self, scratch_experiments):
        scratch_experiments("E-test-sleep", _sleep_experiment)
        scratch_experiments("E-test-ok", _ok_experiment)
        start = time.monotonic()
        records = run_parallel(["E-test-sleep", "E-test-ok"], jobs=2,
                               timeout=2.0, retries=1)
        elapsed = time.monotonic() - start
        assert elapsed < 20, "timeout did not interrupt the sleeping worker"
        by_id = {r.experiment_id: r for r in records}
        assert not by_id["E-test-sleep"].passed
        assert "TIMEOUT" in by_id["E-test-sleep"].notes
        assert by_id["E-test-ok"].passed


class TestRowEscaping:
    def test_pipe_in_parameter_stays_in_one_cell(self):
        record = ExperimentRecord(
            experiment_id="E-test-escape",
            paper_claim="bound",
            parameters={"formula": "K | Ecut", "lines": "a\nb"},
            measured={"value": 3},
        )
        row = record.as_row()
        # 6 structural pipes exactly: the payload ones must be escaped
        assert row.count("|") - row.count("\\|") == 6
        assert "K \\| Ecut" in row
        assert "\n" not in row
        assert "a<br>b" in row

    def test_plain_rows_unchanged(self):
        record = ExperimentRecord(experiment_id="E-x", paper_claim="c",
                                  parameters={"n": 4}, measured={"m": 5})
        assert record.as_row() == "| E-x | c | n=4 | m=5 | PASS |"
