"""Section 5 limitation-protocol tests (Claims 5.1-5.9, 5.11)."""

import math

import pytest

from repro.cc.protocol import Channel
from repro.core.maxcut import MaxCutFamily
from repro.core.mds import MdsFamily
from repro.cc.functions import random_input_pairs
from repro.graphs import random_graph
from repro.limits import (
    PartitionedInstance,
    max_flow_at_least_protocol,
    max_flow_less_than_protocol,
    maxcut_unweighted_protocol,
    maxcut_weighted_two_thirds_protocol,
    maxis_bounded_degree_protocol,
    maxis_half_protocol,
    mds_bounded_degree_protocol,
    mds_two_approx_protocol,
    mvc_bounded_degree_protocol,
    mvc_ptas_protocol,
    mvc_three_halves_protocol,
)
from repro.solvers import (
    cut_weight,
    is_dominating_set,
    is_independent_set,
    is_vertex_cover,
    max_cut_value,
    max_flow,
    max_independent_set,
    max_independent_set_weight,
    min_dominating_set,
    min_dominating_set_weight,
    min_vertex_cover_size,
)


def random_partitioned(n, p, rng):
    g = random_graph(n, p, rng)
    vs = g.vertices()
    return PartitionedInstance(graph=g, alice=set(vs[: n // 2]))


class TestPartitionedInstance:
    def test_cut_edges(self, rng):
        inst = random_partitioned(8, 0.5, rng)
        for u, v in inst.cut_edges():
            assert (u in inst.alice) != (v in inst.alice)

    def test_sides_partition(self, rng):
        inst = random_partitioned(8, 0.5, rng)
        assert inst.alice | inst.bob == set(inst.graph.vertices())
        assert not inst.alice & inst.bob


class TestBoundedDegreeProtocols:
    @pytest.mark.parametrize("epsilon", [0.3, 0.6])
    def test_mvc_ratio_and_validity(self, rng, epsilon):
        for __ in range(3):
            inst = random_partitioned(10, 0.3, rng)
            ch = Channel()
            cover = mvc_bounded_degree_protocol(inst, epsilon, ch)
            assert is_vertex_cover(inst.graph, cover)
            opt = min_vertex_cover_size(inst.graph)
            assert len(set(cover)) <= (1 + epsilon) * opt + 1e-9
            assert ch.bits > 0

    def test_mds_ratio_and_validity(self, rng):
        for __ in range(3):
            inst = random_partitioned(10, 0.3, rng)
            ch = Channel()
            ds = mds_bounded_degree_protocol(inst, 0.5, ch)
            assert is_dominating_set(inst.graph, ds)
            opt = len(min_dominating_set(inst.graph))
            assert len(set(ds)) <= (1 + 0.5) * opt + len(inst.cut_vertices())

    def test_maxis_validity(self, rng):
        for __ in range(3):
            inst = random_partitioned(10, 0.3, rng)
            ch = Channel()
            mis = maxis_bounded_degree_protocol(inst, 0.5, ch)
            assert is_independent_set(inst.graph, set(mis))


class TestMaxCutProtocols:
    def test_unweighted_ratio(self, rng):
        for __ in range(3):
            inst = random_partitioned(10, 0.4, rng)
            if inst.graph.m == 0:
                continue
            ch = Channel()
            side = maxcut_unweighted_protocol(inst, 0.5, ch)
            assert cut_weight(inst.graph, side) >= \
                0.5 * max_cut_value(inst.graph)

    def test_weighted_two_thirds(self, rng):
        for __ in range(4):
            inst = random_partitioned(10, 0.45, rng)
            if inst.graph.m == 0:
                continue
            for u, v in inst.graph.edges():
                inst.graph.set_edge_weight(u, v, rng.randint(1, 9))
            ch = Channel()
            side = maxcut_weighted_two_thirds_protocol(inst, ch)
            assert cut_weight(inst.graph, side) >= \
                (2 / 3) * max_cut_value(inst.graph) - 1e-9

    def test_two_thirds_bits_scale_with_cut(self, rng):
        """O(|Ecut| log n) — checked on a family instance with small cut."""
        fam = MaxCutFamily(2)
        x, y = random_input_pairs(4, 2, rng)[1]
        g = fam.build(x, y)
        inst = PartitionedInstance(graph=g, alice=fam.alice_vertices())
        ch = Channel()
        maxcut_weighted_two_thirds_protocol(inst, ch)
        ecut = len(inst.cut_edges())
        logn = math.log2(g.n)
        assert ch.bits <= 64 * (ecut + 4) * logn


class TestCoverProtocols:
    def test_mvc_three_halves(self, rng):
        for __ in range(3):
            inst = random_partitioned(10, 0.4, rng)
            ch = Channel()
            cover = mvc_three_halves_protocol(inst, ch)
            assert is_vertex_cover(inst.graph, cover)
            assert len(set(cover)) <= \
                1.5 * min_vertex_cover_size(inst.graph) + 1e-9

    def test_mvc_ptas(self, rng):
        for eps in (0.4, 1.0):
            inst = random_partitioned(10, 0.35, rng)
            ch = Channel()
            cover = mvc_ptas_protocol(inst, eps, ch)
            assert is_vertex_cover(inst.graph, cover)
            opt = min_vertex_cover_size(inst.graph)
            assert len(set(cover)) <= (1 + eps) * opt + 1e-9

    def test_mds_two_approx_weighted(self, rng):
        for __ in range(3):
            inst = random_partitioned(9, 0.4, rng)
            for v in inst.graph.vertices():
                inst.graph.set_vertex_weight(v, rng.randint(1, 5))
            ch = Channel()
            ds = mds_two_approx_protocol(inst, ch)
            assert is_dominating_set(inst.graph, ds)
            w = sum(inst.graph.vertex_weight(v) for v in set(ds))
            assert w <= 2 * min_dominating_set_weight(inst.graph) + 1e-9

    def test_maxis_half(self, rng):
        for __ in range(3):
            inst = random_partitioned(10, 0.4, rng)
            ch = Channel()
            mis = maxis_half_protocol(inst, ch)
            assert is_independent_set(inst.graph, mis)
            assert len(mis) >= len(max_independent_set(inst.graph)) / 2
            # O(log n) bits only
            assert ch.messages == 2


class TestFlowNdProtocols:
    def _instance(self, rng):
        from tests.conftest import connected_random_graph

        g = connected_random_graph(8, 0.45, rng)
        for u, v in g.edges():
            g.set_edge_weight(u, v, rng.randint(1, 5))
        vs = g.vertices()
        return PartitionedInstance(graph=g, alice=set(vs[:4])), vs[0], vs[-1]

    def test_at_least_complete(self, rng):
        inst, s, t = self._instance(rng)
        mf, __ = max_flow(inst.graph, s, t)
        proto = max_flow_at_least_protocol(inst, s, t, mf)
        proto.check_completeness(None, None)

    def test_at_least_sound_against_overclaim(self, rng):
        inst, s, t = self._instance(rng)
        mf, flow = max_flow(inst.graph, s, t)
        proto = max_flow_at_least_protocol(inst, s, t, mf + 1)
        # the honest max-flow certificate cannot prove mf + 1
        honest = proto.prover(None, None)
        ch = Channel()
        assert not proto.verifier(None, honest[0], None, honest[1], ch)

    def test_less_than_complete(self, rng):
        inst, s, t = self._instance(rng)
        mf, __ = max_flow(inst.graph, s, t)
        proto = max_flow_less_than_protocol(inst, s, t, mf + 1)
        proto.check_completeness(None, None)

    def test_less_than_sound_against_underclaim(self, rng):
        inst, s, t = self._instance(rng)
        mf, __ = max_flow(inst.graph, s, t)
        proto = max_flow_less_than_protocol(inst, s, t, mf)
        honest = proto.prover(None, None)
        ch = Channel()
        assert not proto.verifier(None, honest[0], None, honest[1], ch)

    def test_conservation_checked(self, rng):
        inst, s, t = self._instance(rng)
        proto = max_flow_at_least_protocol(inst, s, t, 1)
        # a certificate violating conservation is rejected
        bad_arc = next(iter(inst.graph.edges()))
        cert = {(bad_arc[0], bad_arc[1]): 1.0}
        ch = Channel()
        assert not proto.verifier(None, cert, None, cert, ch) or \
            bad_arc[0] in (s, t) and bad_arc[1] in (s, t)
