"""Figure 2 / Theorems 2.2-2.4 family tests (Claims 2.1-2.6)."""

from itertools import product

import pytest

from repro.cc.functions import (
    disjointness,
    random_disjoint_pair,
    random_input_pairs,
    random_intersecting_pair,
)
from repro.core.family import validate_family, verify_iff
from repro.core.hamiltonian import (
    END,
    MIDDLE,
    S11,
    S21,
    START,
    HamiltonianCycleFamily,
    HamiltonianPathFamily,
    arow,
    brow,
    burn,
    launch,
    skip,
)
from repro.solvers import (
    find_hamiltonian_path,
    is_hamiltonian_cycle,
    is_hamiltonian_path,
)


@pytest.fixture(scope="module")
def fam():
    return HamiltonianPathFamily(2)


class TestConstruction:
    def test_vertex_count_k2(self, fam):
        # 6 specials + 4k rows + 2 log k boxes of (2 + 6k) vertices
        assert fam.n_vertices() == 6 + 8 + 2 * (2 + 12)

    def test_wheels_are_row_vertices(self, fam):
        # box 0 track t slot 0: the a1-row whose bit 0 is 1, i.e. index 1
        assert fam.wheel(0, 0, "t") == arow(1, 1)
        assert fam.wheel(0, 1, "t") == brow(1, 1)
        assert fam.wheel(0, 0, "f") == arow(1, 0)
        # boxes >= log k use the subscript-2 rows
        assert fam.wheel(1, 0, "t") == arow(2, 1)

    def test_every_row_is_wheel_once_per_box_side(self, fam):
        seen = {}
        for c in range(fam.n_boxes):
            for q in ("t", "f"):
                for d in range(fam.k):
                    w = fam.wheel(c, d, q)
                    seen.setdefault(w, 0)
                    seen[w] += 1
        # each row vertex appears once per box of its side
        assert all(count == fam.log_k for count in seen.values())

    def test_gadget_wiring(self, fam):
        g = fam.fixed_graph()
        l, s, b = launch(0, 0, "t"), skip(0, 0, "t"), burn(0, 0, "t")
        w = fam.wheel(0, 0, "t")
        assert g.has_edge(l, s) and g.has_edge(l, w)
        assert g.has_edge(w, b)
        assert g.has_edge(s, b) and g.has_edge(b, s)

    def test_backward_edge_to_s11(self, fam):
        g = fam.fixed_graph()
        for q in ("t", "f"):
            assert g.has_edge(burn(0, 0, q), S11)

    def test_start_end_degrees(self, fam):
        g = fam.fixed_graph()
        assert g.in_degree(START) == 0
        assert g.out_degree(END) == 0

    def test_definition_1_1(self, fam):
        validate_family(fam)

    def test_cut_logarithmic(self):
        e2 = len(HamiltonianPathFamily(2).cut_edges())
        e4 = len(HamiltonianPathFamily(4).cut_edges())
        # cut grows like log k, certainly not like k² = K
        assert e4 <= 2 * e2


class TestClaims:
    def test_iff_exhaustive_quarter(self, fam):
        """Claims 2.1 + 2.2 over a quarter of the full k=2 input space
        (the full 256-pair sweep runs in the benchmark suite)."""
        pairs = [(x, y) for x in product((0, 1), repeat=4)
                 for y in product((0, 1), repeat=4)
                 if x[0] == 0 and y[3] == 0]
        report = verify_iff(fam, pairs, negate=True)
        assert report.checked == 64

    def test_witness_path_k2(self, fam, rng):
        x, y = random_intersecting_pair(4, rng)
        path = fam.witness_path(x, y)
        assert path[0] == START and path[-1] == END
        assert is_hamiltonian_path(fam.build(x, y), path)

    def test_witness_path_k4(self, rng):
        fam4 = HamiltonianPathFamily(4)
        x, y = random_intersecting_pair(16, rng)
        path = fam4.witness_path(x, y)
        assert len(path) == fam4.n_vertices()

    def test_no_witness_when_disjoint(self, fam, rng):
        x, y = random_disjoint_pair(4, rng)
        with pytest.raises(StopIteration):
            fam.witness_path(x, y)

    def test_found_path_respects_structure(self, fam, rng):
        x, y = random_intersecting_pair(4, rng)
        path = find_hamiltonian_path(fam.build(x, y))
        assert path is not None
        assert path[0] == START
        assert path[-1] == END


class TestCycleVariant:
    def test_middle_vertex_added(self):
        famc = HamiltonianCycleFamily(2)
        g = famc.build((0,) * 4, (0,) * 4)
        assert MIDDLE in g
        assert g.has_edge(END, MIDDLE)
        assert g.has_edge(MIDDLE, START)

    def test_claim_2_6_iff(self, rng):
        famc = HamiltonianCycleFamily(2)
        validate_family(famc)
        pairs = random_input_pairs(4, 6, rng)
        report = verify_iff(famc, pairs, negate=True)
        assert report.true_instances and report.false_instances

    def test_witness_cycle(self, rng):
        famc = HamiltonianCycleFamily(2)
        x, y = random_intersecting_pair(4, rng)
        cycle = famc.witness_cycle(x, y)
        assert is_hamiltonian_cycle(famc.build(x, y), cycle)
