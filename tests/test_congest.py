"""CONGEST simulator and distributed-algorithm tests."""

import pytest

from repro.congest import (
    BandwidthExceeded,
    CongestSimulator,
    NodeAlgorithm,
    default_bandwidth,
    message_bits,
)
from repro.congest.algorithms import (
    run_bfs,
    run_greedy_mds,
    run_leader_election,
    run_maxcut_sampling,
    run_universal_exact,
)
from repro.graphs import Graph, complete_graph, cycle_graph, path_graph, random_graph
from repro.solvers import (
    cut_weight,
    is_dominating_set,
    max_cut_value,
    min_dominating_set,
)
from tests.conftest import connected_random_graph


class TestMessageBits:
    def test_small_int(self):
        assert message_bits(0) == 1
        assert message_bits(5) == 4

    def test_bool(self):
        assert message_bits(True) == 1

    def test_none(self):
        assert message_bits(None) == 1

    def test_tuple_framing(self):
        assert message_bits((1, 2)) > message_bits(1) + message_bits(2)

    def test_string(self):
        assert message_bits("ab") == 16

    def test_unsupported_type(self):
        with pytest.raises(TypeError):
            message_bits(object())

    def test_set_matches_frozenset(self):
        # regression: plain sets used to raise TypeError
        assert message_bits({1, 2}) == message_bits(frozenset({1, 2}))
        assert message_bits(set()) == 0

    def test_bytes(self):
        # regression: bytes/bytearray used to raise TypeError
        assert message_bits(b"ab") == 16
        assert message_bits(bytearray(b"abc")) == 24
        assert message_bits(b"") == 0


class TestSimulator:
    def test_bandwidth_default(self):
        assert default_bandwidth(16, c=8) == 32

    def test_bandwidth_enforced(self):
        class Shout(NodeAlgorithm):
            def on_start(self, ctx):
                return {w: 1 << 500 for w in ctx.neighbors}

            def on_round(self, ctx, messages):
                ctx.halt()
                return {}

        sim = CongestSimulator(path_graph(3))
        with pytest.raises(BandwidthExceeded):
            sim.run(Shout)

    def test_non_neighbor_send_rejected(self):
        class Cheat(NodeAlgorithm):
            def on_start(self, ctx):
                bad = (ctx.uid + 2) % ctx.n
                return {bad: 1}

            def on_round(self, ctx, messages):
                ctx.halt()
                return {}

        sim = CongestSimulator(path_graph(4))
        with pytest.raises(ValueError):
            sim.run(Cheat)

    def test_round_counting(self):
        class Wait3(NodeAlgorithm):
            def __init__(self):
                self.r = 0

            def on_round(self, ctx, messages):
                self.r += 1
                if self.r == 3:
                    ctx.halt(self.r)
                return {}

        sim = CongestSimulator(path_graph(3))
        outputs = sim.run(Wait3)
        assert sim.rounds == 3
        assert all(v == 3 for v in outputs.values())

    def test_max_rounds_guard(self):
        class Forever(NodeAlgorithm):
            def on_round(self, ctx, messages):
                return {}

        sim = CongestSimulator(path_graph(3))
        with pytest.raises(RuntimeError):
            sim.run(Forever, max_rounds=10)

    def test_counters_reset_between_runs(self):
        # a reused simulator reports per-run stats, not accumulated ones
        class Wait2(NodeAlgorithm):
            def __init__(self):
                self.r = 0

            def on_start(self, ctx):
                return {w: 1 for w in ctx.neighbors}

            def on_round(self, ctx, messages):
                self.r += 1
                if self.r == 2:
                    ctx.halt()
                return {}

        sim = CongestSimulator(path_graph(3))
        sim.run(Wait2)
        first = (sim.rounds, sim.total_messages, sim.total_bits,
                 sim.max_message_bits)
        sim.run(Wait2)
        assert (sim.rounds, sim.total_messages, sim.total_bits,
                sim.max_message_bits) == first


class TestLeaderAndBfs:
    def test_leader_is_minimum(self, rng):
        g = connected_random_graph(9, 0.35, rng)
        leader, sim = run_leader_election(g)
        assert leader == 0
        assert sim.rounds == g.n

    def test_bfs_depths_match(self, rng):
        g = connected_random_graph(9, 0.35, rng)
        root = g.vertices()[0]
        outputs, sim = run_bfs(g, root)
        truth = g.bfs_distances(root)
        for v, (parent, depth) in outputs.items():
            assert depth == truth[v]

    def test_bfs_parents_form_tree(self, rng):
        g = connected_random_graph(8, 0.4, rng)
        root = g.vertices()[0]
        outputs, sim = run_bfs(g, root)
        root_uid = sim.uid_of[root]
        n_roots = sum(1 for (p, d) in outputs.values() if p is None)
        assert n_roots == 1


class TestUniversalAlgorithm:
    def test_exact_mds_distributed(self, rng):
        g = connected_random_graph(9, 0.4, rng)

        def solver(gg):
            ds = set(min_dominating_set(gg))
            return len(ds), {u: (u in ds) for u in gg.vertices()}

        outputs, sim = run_universal_exact(g, solver)
        members = [v for v, o in outputs.items() if o["value"]]
        assert is_dominating_set(g, members)
        assert len(members) == len(min_dominating_set(g))

    def test_round_complexity_linear_in_m(self, rng):
        g = connected_random_graph(10, 0.5, rng)

        def solver(gg):
            return 0, {u: 0 for u in gg.vertices()}

        __, sim = run_universal_exact(g, solver)
        # leader (n) + BFS (n) + announce (1) + pipelined upcast O(m + D)
        # + downcast O(n + D)
        assert sim.rounds <= 2 * g.n + 1 + (g.m + g.n) + (2 * g.n + 5)

    def test_all_vertices_get_global_value(self, rng):
        g = connected_random_graph(8, 0.4, rng)

        def solver(gg):
            return 42, {u: u for u in gg.vertices()}

        outputs, __ = run_universal_exact(g, solver)
        assert all(o["global"] == 42 for o in outputs.values())


class TestMaxCutSampling:
    def test_p_one_is_exact(self, rng):
        g = connected_random_graph(10, 0.45, rng)
        res = run_maxcut_sampling(g, p=1.0, seed=5)
        exact = max_cut_value(g)
        assert res.sampled_value == exact
        side = [v for v, s in res.sides.items() if s]
        assert cut_weight(g, side) == exact

    def test_sampling_gives_valid_cut(self, rng):
        g = connected_random_graph(12, 0.4, rng)
        res = run_maxcut_sampling(g, p=0.6, seed=6)
        assert set(res.sides) == set(g.vertices())
        assert res.sampled_edges <= g.m

    def test_estimate_scales_by_p(self, rng):
        g = connected_random_graph(10, 0.5, rng)
        res = run_maxcut_sampling(g, p=0.5, seed=7)
        assert res.estimated_value == res.sampled_value / 0.5

    def test_empty_graph_rejected(self):
        g = Graph()
        g.add_vertices([1, 2])
        with pytest.raises(ValueError):
            run_maxcut_sampling(g)


class TestGreedyMds:
    def test_output_dominates(self, rng):
        for __ in range(4):
            g = connected_random_graph(10, 0.35, rng)
            members, sim = run_greedy_mds(g)
            ds = [v for v, b in members.items() if b]
            assert is_dominating_set(g, ds)

    def test_reasonable_approximation(self, rng):
        ratios = []
        for __ in range(4):
            g = connected_random_graph(10, 0.4, rng)
            members, __s = run_greedy_mds(g)
            ds = [v for v, b in members.items() if b]
            ratios.append(len(ds) / len(min_dominating_set(g)))
        assert max(ratios) <= 4.0

    def test_single_clique_one_dominator(self):
        g = complete_graph(6)
        members, __ = run_greedy_mds(g)
        assert sum(members.values()) == 1


class TestLocalModel:
    """Regression: ``bandwidth=math.inf`` is the LOCAL model — unbounded
    messages must pass, while the default CONGEST bound still rejects
    them (the old code treated the docstring's LOCAL spelling as an
    error)."""

    class Shout(NodeAlgorithm):
        def on_start(self, ctx):
            return {w: 1 << 500 for w in ctx.neighbors}

        def on_round(self, ctx, messages):
            ctx.halt(sum(messages.values()))
            return {}

    def test_oversized_message_passes_under_local(self):
        import math

        sim = CongestSimulator(path_graph(3), bandwidth=math.inf)
        outputs = sim.run(self.Shout)
        assert outputs[0] == 1 << 500
        # sizes are still accounted even though nothing is rejected
        assert sim.max_message_bits >= 500
        assert sim.total_bits > 1000

    def test_same_message_rejected_under_default_congest(self):
        sim = CongestSimulator(path_graph(3))
        assert sim.bandwidth == default_bandwidth(3)
        with pytest.raises(BandwidthExceeded):
            sim.run(self.Shout)

    def test_explicit_finite_bandwidth_still_enforced(self):
        sim = CongestSimulator(path_graph(3), bandwidth=100)
        with pytest.raises(BandwidthExceeded):
            sim.run(self.Shout)


class TestMessageBitsEdgeCases:
    def test_int_zero_costs_one_bit(self):
        assert message_bits(0) == 1

    def test_negative_ints(self):
        assert message_bits(-1) == 2
        assert message_bits(-5) == 4
        assert message_bits(-(1 << 10)) == 12

    def test_bool_dispatches_before_int(self):
        # bool is an int subclass; it must take the 1-bit branch
        assert message_bits(True) == 1
        assert message_bits(False) == 1
        assert message_bits(1) == 2

    def test_nested_empty_containers(self):
        assert message_bits([]) == 0
        assert message_bits(()) == 0
        assert message_bits({}) == 0
        assert message_bits([[]]) == 2
        assert message_bits([[], []]) == 4
        assert message_bits(((), {})) == 4
        assert message_bits({0: []}) == 5  # key 1 bit + value 0 + 4 framing


class TestSimulatorDeterminism:
    def test_two_runs_agree_exactly(self, rng):
        g = connected_random_graph(9, 0.35, rng)
        root = min(g.vertices())
        first = run_bfs(g, root)
        second = run_bfs(g, root)
        assert first[0] == second[0]
        assert first[1].rounds == second[1].rounds
        assert first[1].total_messages == second[1].total_messages
        assert first[1].total_bits == second[1].total_bits

    def test_uid_assignment_is_label_repr_order(self):
        # documented contract: uids follow (type name, repr) order, so
        # integer labels sort lexicographically (10 before 2), and the
        # order is independent of insertion order
        g = Graph()
        g.add_edge(2, 10)
        g.add_edge(10, 100)
        sim = CongestSimulator(g)
        assert sim.labels == [10, 100, 2]
        h = Graph()
        h.add_edge(10, 100)
        h.add_edge(10, 2)
        assert CongestSimulator(h).labels == sim.labels

    def test_edge_weights_order_is_uid_sorted(self):
        # regression: edge_weights used to be built by iterating the
        # neighbour *set*, so its dict order depended on PYTHONHASHSEED
        g = Graph()
        for a, b in [("gamma", "alpha"), ("gamma", "beta"),
                     ("gamma", "delta"), ("alpha", "beta")]:
            g.add_edge(a, b, weight=1.0)
        orders = {}

        class Capture(NodeAlgorithm):
            def on_start(self, ctx):
                orders[ctx.uid] = tuple(ctx.edge_weights)
                ctx.halt(None)
                return {}

        CongestSimulator(g).run(Capture)
        for uid, order in orders.items():
            assert order == tuple(sorted(order))
        sim = CongestSimulator(g)
        for uid, order in orders.items():
            label = sim.labels[uid]
            assert set(order) == {sim.uid_of[w] for w in g.neighbors(label)}

    def test_edge_weights_order_independent_of_hash_seed(self):
        # the same capture, run in subprocesses under two different
        # PYTHONHASHSEED values: the presented dict order must match
        import os
        import subprocess
        import sys

        script = (
            "from repro.graphs import Graph\n"
            "from repro.congest import CongestSimulator, NodeAlgorithm\n"
            "g = Graph()\n"
            "for a, b in [('gamma','alpha'),('gamma','beta'),\n"
            "             ('gamma','delta'),('gamma','eps'),\n"
            "             ('alpha','beta'),('delta','eps')]:\n"
            "    g.add_edge(a, b)\n"
            "orders = {}\n"
            "class Capture(NodeAlgorithm):\n"
            "    def on_start(self, ctx):\n"
            "        orders[ctx.uid] = tuple(ctx.edge_weights)\n"
            "        ctx.halt(None)\n"
            "        return {}\n"
            "CongestSimulator(g).run(Capture)\n"
            "print(sorted(orders.items()))\n"
        )
        src = os.path.abspath(
            os.path.join(os.path.dirname(__file__), "..", "src"))
        outs = []
        for seed in ("0", "4242"):
            env = dict(os.environ, PYTHONHASHSEED=seed)
            env["PYTHONPATH"] = os.pathsep.join(
                p for p in (src, env.get("PYTHONPATH", "")) if p)
            proc = subprocess.run(
                [sys.executable, "-c", script], env=env,
                capture_output=True, text=True, check=True)
            outs.append(proc.stdout)
        assert outs[0] == outs[1]
