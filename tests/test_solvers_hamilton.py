"""Hamiltonian path/cycle solver tests, cross-checked against Held-Karp."""

import random

import pytest

from repro.graphs import DiGraph, Graph, complete_graph, cycle_graph, path_graph, random_graph
from repro.solvers import (
    find_hamiltonian_cycle,
    find_hamiltonian_path,
    has_hamiltonian_cycle,
    has_hamiltonian_path,
    is_hamiltonian_cycle,
    is_hamiltonian_path,
)
from repro.solvers.hamilton import held_karp_has_path


def random_digraph(n, p, rng):
    g = DiGraph()
    for v in range(n):
        g.add_vertex(v)
    for u in range(n):
        for v in range(n):
            if u != v and rng.random() < p:
                g.add_edge(u, v)
    return g


class TestCheckers:
    def test_path_checker_accepts(self):
        g = path_graph(4)
        assert is_hamiltonian_path(g, [0, 1, 2, 3])

    def test_path_checker_rejects_short(self):
        assert not is_hamiltonian_path(path_graph(4), [0, 1, 2])

    def test_path_checker_rejects_nonedges(self):
        assert not is_hamiltonian_path(path_graph(4), [0, 2, 1, 3])

    def test_path_checker_rejects_repeats(self):
        assert not is_hamiltonian_path(path_graph(4), [0, 1, 2, 1])

    def test_cycle_checker(self):
        g = cycle_graph(5)
        assert is_hamiltonian_cycle(g, [0, 1, 2, 3, 4])
        assert not is_hamiltonian_cycle(g, [0, 1, 2, 4, 3])

    def test_directed_checker(self):
        g = DiGraph()
        g.add_edge(0, 1)
        g.add_edge(1, 2)
        assert is_hamiltonian_path(g, [0, 1, 2])
        assert not is_hamiltonian_path(g, [2, 1, 0])


class TestUndirectedSearch:
    def test_cycle_graph_has_both(self):
        g = cycle_graph(6)
        assert has_hamiltonian_path(g)
        assert has_hamiltonian_cycle(g)

    def test_path_graph(self):
        g = path_graph(6)
        assert has_hamiltonian_path(g)
        assert not has_hamiltonian_cycle(g)

    def test_star_has_neither(self):
        g = Graph()
        for leaf in range(4):
            g.add_edge("c", leaf)
        assert not has_hamiltonian_path(g)
        assert not has_hamiltonian_cycle(g)

    def test_complete(self):
        assert has_hamiltonian_cycle(complete_graph(6))

    def test_endpoints_constraint(self):
        g = path_graph(5)
        assert find_hamiltonian_path(g, source=0, target=4) is not None
        assert find_hamiltonian_path(g, source=1, target=4) is None

    def test_found_path_is_valid(self, rng):
        for __ in range(6):
            g = random_graph(8, 0.6, rng)
            path = find_hamiltonian_path(g)
            if path is not None:
                assert is_hamiltonian_path(g, path)

    def test_found_cycle_is_valid(self, rng):
        for __ in range(6):
            g = random_graph(8, 0.6, rng)
            cycle = find_hamiltonian_cycle(g)
            if cycle is not None:
                assert is_hamiltonian_cycle(g, cycle)


class TestDirectedSearch:
    def test_directed_cycle(self):
        g = DiGraph()
        for i in range(5):
            g.add_edge(i, (i + 1) % 5)
        assert has_hamiltonian_cycle(g)
        assert has_hamiltonian_path(g)

    def test_directed_path_one_way(self):
        g = DiGraph()
        for i in range(4):
            g.add_edge(i, i + 1)
        assert has_hamiltonian_path(g)
        assert not has_hamiltonian_cycle(g)

    def test_zero_indegree_must_start(self):
        g = DiGraph()
        g.add_edge(0, 1)
        g.add_edge(1, 2)
        g.add_edge(2, 0)
        g.add_edge(3, 0)  # 3 has in-degree 0
        path = find_hamiltonian_path(g)
        assert path is not None
        assert path[0] == 3

    def test_two_sources_impossible(self):
        g = DiGraph()
        g.add_edge(0, 2)
        g.add_edge(1, 2)
        g.add_edge(2, 3)
        assert not has_hamiltonian_path(g)

    def test_matches_held_karp(self, rng):
        for __ in range(15):
            g = random_digraph(7, 0.3, rng)
            assert has_hamiltonian_path(g) == held_karp_has_path(g)

    def test_matches_held_karp_undirected(self, rng):
        for __ in range(10):
            g = random_graph(7, 0.35, rng)
            assert has_hamiltonian_path(g) == held_karp_has_path(g)

    def test_held_karp_limit(self):
        with pytest.raises(ValueError):
            held_karp_has_path(complete_graph(19))


class TestEdgeCases:
    def test_single_vertex(self):
        g = Graph()
        g.add_vertex("a")
        assert find_hamiltonian_path(g) == ["a"]
        assert find_hamiltonian_cycle(g) is None

    def test_empty_graph(self):
        assert find_hamiltonian_path(Graph()) is None

    def test_two_vertices_directed(self):
        g = DiGraph()
        g.add_edge(0, 1)
        assert find_hamiltonian_path(g) == [0, 1]
        assert not has_hamiltonian_cycle(g)
