"""Skeleton/delta incremental builds: equivalence, caching, sweeps."""

import random

import pytest

from repro.cc.functions import random_input_pairs
from repro.check.family_check import check_family_delta, migrated_families
from repro.core.family import (
    FamilyValidationError,
    IffReport,
    pair_repro_command,
    sweep,
    verify_iff,
)
from repro.core.kmds import KMdsFamily
from repro.core.mds import MdsFamily


def _pairs(fam, n, seed=0xBEEF):
    return random_input_pairs(fam.k_bits, n, random.Random(seed))


# ----------------------------------------------------------------------
# delta builds == scratch builds, for every migrated family
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name,fam", migrated_families(),
                         ids=[n for n, _ in migrated_families()])
def test_delta_equals_scratch(name, fam):
    for x, y in _pairs(fam, 2):
        assert fam.build(x, y).content_hash() == \
            fam.build_scratch(x, y).content_hash()


def test_check_family_delta_green():
    assert check_family_delta(0, 0) is None


def test_mutating_a_built_copy_never_corrupts_the_skeleton():
    fam = MdsFamily(2)
    (x, y), = _pairs(fam, 1)
    want = fam.build_scratch(x, y).content_hash()
    g = fam.build(x, y)
    g.add_vertex(g.vertices()[0], weight=99.0)     # weight-only mutation
    g.add_vertex(("mutant", 0))                    # structural mutation
    g.add_edge(("mutant", 0), ("mutant", 1))
    assert g.content_hash() != want
    assert fam.build(x, y).content_hash() == want


def test_skeleton_is_built_once_per_instance():
    calls = []

    class Counting(MdsFamily):
        def build_skeleton(self):
            calls.append(1)
            return super().build_skeleton()

    fam = Counting(2)
    for x, y in _pairs(fam, 3):
        fam.build(x, y)
    assert len(calls) == 1
    # build_scratch intentionally bypasses the store
    x, y = _pairs(fam, 1)[0]
    fam.build_scratch(x, y)
    assert len(calls) == 2


def test_kmds_bespoke_template_is_gone():
    from repro.covering import build_covering_collection

    cc = build_covering_collection(universe_size=16, T=6, r=2, seed=0)
    fam = KMdsFamily(cc, k=2)
    assert not hasattr(fam, "_fixed")
    g1 = fam.fixed_graph()   # historical alias still works
    g2 = fam.skeleton()
    assert g1.content_hash() == g2.content_hash()
    g1.add_vertex(("scribble",))
    assert ("scribble",) not in g2


# ----------------------------------------------------------------------
# sweep(): memoization, deduplication, parallel equivalence
# ----------------------------------------------------------------------
def test_sweep_memoizes_per_instance():
    calls = []

    class Counting(MdsFamily):
        def predicate(self, graph):
            calls.append(1)
            return super().predicate(graph)

    fam = Counting(2)
    pairs = _pairs(fam, 4)
    # batch=False: this test counts per-pair predicate() calls, which
    # the batched kernel legitimately bypasses
    first = sweep(fam, pairs + pairs[:2], batch=False)
    assert len(calls) == 4
    assert first.pairs == 6
    assert first.unique_pairs == 4
    assert first.memo_hits == 2
    second = sweep(fam, pairs)
    assert len(calls) == 4                  # all hits, nothing re-solved
    assert second.memo_hits == 4
    assert second.decisions == first.decisions[:4]


def test_sweep_memo_false_still_dedupes_within_batch():
    fam = MdsFamily(2)
    pairs = _pairs(fam, 2)
    report = sweep(fam, pairs + pairs, memo=False)
    assert report.unique_pairs == 2
    assert report.memo_hits == 2
    assert not hasattr(fam, "_sweep_memo")


def test_parallel_sweep_matches_serial():
    pairs = _pairs(MdsFamily(2), 5)
    serial = sweep(MdsFamily(2), pairs)
    parallel = sweep(MdsFamily(2), pairs, jobs=2)
    assert parallel.decisions == serial.decisions


def test_verify_iff_report_identical_under_jobs():
    pairs = _pairs(MdsFamily(2), 5)
    serial = verify_iff(MdsFamily(2), pairs, negate=True)
    parallel = verify_iff(MdsFamily(2), pairs, negate=True, jobs=2)
    assert isinstance(serial, IffReport)
    assert serial == parallel


def test_unpicklable_family_falls_back_to_serial():
    class Local(MdsFamily):  # local classes cannot be pickled
        pass

    fam = Local(2)
    pairs = _pairs(fam, 3)
    report = sweep(fam, pairs, jobs=2)
    assert report.decisions == sweep(MdsFamily(2), pairs).decisions


# ----------------------------------------------------------------------
# verify_iff failure reporting
# ----------------------------------------------------------------------
class _BrokenMds(MdsFamily):
    def predicate(self, graph):
        return not super().predicate(graph)


def test_verify_iff_collects_all_mismatches_with_repro_commands():
    fam = _BrokenMds(2)
    pairs = _pairs(fam, 4)
    with pytest.raises(FamilyValidationError) as exc:
        verify_iff(fam, pairs, negate=True)
    message = str(exc.value)
    assert "4 predicate mismatch(es)" in message
    assert message.count("reproduce:") == 4
    assert "python -m repro verify mds -k 2 --x " in message


def test_pair_repro_command_without_cli_name():
    fam = MdsFamily(2)
    fam.cli_name = None
    text = pair_repro_command(fam, (0,) * 4, (1,) * 4)
    assert "no CLI repro available" in text


def test_cli_single_pair_mode(capsys):
    from repro.cli import main

    main(["verify", "mds", "-k", "2", "--x", "0000", "--y", "0000"])
    out = capsys.readouterr().out
    assert "-> OK" in out
    with pytest.raises(SystemExit):
        main(["verify", "mds", "-k", "2", "--x", "01", "--y", "0000"])


def test_cli_emitted_repro_command_runs(capsys):
    fam = _BrokenMds(2)
    with pytest.raises(FamilyValidationError) as exc:
        verify_iff(fam, _pairs(fam, 1), negate=True)
    line = next(l for l in str(exc.value).splitlines() if "reproduce:" in l)
    argv = line.split("reproduce:")[1].split()[3:]  # drop "python -m repro"
    from repro.cli import main
    main(argv)  # the real family passes where the broken one failed
    assert "-> OK" in capsys.readouterr().out


# ----------------------------------------------------------------------
# input validation stays intact
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name,fam", migrated_families(),
                         ids=[n for n, _ in migrated_families()])
def test_bad_input_length_raises(name, fam):
    with pytest.raises(ValueError):
        fam.build((0,) * (fam.k_bits + 1), (0,) * fam.k_bits)
    with pytest.raises(ValueError):
        fam.build_scratch((0,) * fam.k_bits, (0,))
